#include "service/service.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/dirlock.hpp"
#include "core/runner.hpp"
#include "service/wire.hpp"

namespace maps::service {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Classification, chaos and request specs (free functions: unit-tested).
// ---------------------------------------------------------------------------

const char *
failureClassName(FailureClass c)
{
    switch (c) {
      case FailureClass::None: return "none";
      case FailureClass::Transient: return "transient";
      case FailureClass::Deterministic: return "deterministic";
      case FailureClass::Shed: return "shed";
    }
    return "none";
}

FailureClass
classifyOutcome(const ChildOutcome &outcome, const std::string &errText)
{
    switch (outcome.kind) {
      case ChildOutcome::Kind::TimedOut:
        // Hard deadline: the cell was hung or stopped; a retry gets a
        // fresh process and usually succeeds.
        return FailureClass::Transient;
      case ChildOutcome::Kind::Signaled:
        // SIGABRT is an assertion/invariant failure inside the driver —
        // rerunning a deterministic simulation reproduces it. Anything
        // else (SIGKILL from the OOM killer or chaos, SIGSEGV from a
        // wedged box) is worth one more attempt against checkpoints.
        return outcome.termSignal == SIGABRT ? FailureClass::Deterministic
                                             : FailureClass::Transient;
      case ChildOutcome::Kind::SpawnFailed:
        // Missing binary / unexecutable: retrying cannot help.
        return FailureClass::Deterministic;
      case ChildOutcome::Kind::Exited:
        break;
    }
    if (outcome.exitCode == 0)
        return FailureClass::None;
    // Exit 2 is the driver's usage error, exit 4 unknown --only-cells:
    // both mean the request itself is wrong. Exit 1 is "some cells
    // failed"; a failure report naming --cell-timeout is the runner's
    // cooperative cancellation and therefore transient, every other
    // cell failure is the simulation deterministically failing.
    if (outcome.exitCode == 2 || outcome.exitCode == 4)
        return FailureClass::Deterministic;
    return errText.find("--cell-timeout") != std::string::npos
               ? FailureClass::Transient
               : FailureClass::Deterministic;
}

std::string
parseChaosSpec(const std::string &spec, std::vector<ChaosEvent> &out)
{
    out.clear();
    if (spec.empty())
        return "";
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ',')) {
        ChaosEvent ev;
        std::string rest;
        if (item.rfind("kill:worker@", 0) == 0) {
            ev.kind = ChaosEvent::Kind::KillWorker;
            rest = item.substr(12);
        } else if (item.rfind("hang:worker@", 0) == 0) {
            ev.kind = ChaosEvent::Kind::HangWorker;
            rest = item.substr(12);
        } else {
            return "bad chaos event '" + item +
                   "' (want kill:worker@n=N or hang:worker@n=N)";
        }
        if (rest.rfind("n=", 0) != 0)
            return "bad chaos trigger in '" + item + "' (want n=N)";
        const std::string num = rest.substr(2);
        if (num.empty() ||
            num.find_first_not_of("0123456789") != std::string::npos)
            return "bad chaos ordinal in '" + item + "'";
        ev.nth = std::stoull(num);
        if (ev.nth == 0)
            return "chaos ordinal in '" + item + "' is 1-based";
        out.push_back(ev);
    }
    return "";
}

std::string
RequestSpec::validate() const
{
    if (driver.empty())
        return "request has no driver";
    for (const char c : driver)
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_')
            return "driver name '" + driver +
                   "' must be a bare binary name";
    if (metrics != "off" && metrics != "summary" && metrics != "full")
        return "metrics must be off, summary or full (got '" + metrics +
               "')";
    if (cellTimeoutSec < 0.0)
        return "cell timeout must be >= 0";
    static const char *kOwned[] = {"--resume",    "--only-cells",
                                   "--list-cells", "--jobs",
                                   "--metrics",   "--cell-timeout"};
    for (const auto &a : args) {
        if (a.rfind("--", 0) != 0)
            return "driver arg '" + a + "' must be a --flag";
        for (const char c : a)
            if (std::isspace(static_cast<unsigned char>(c)) ||
                static_cast<unsigned char>(c) < 0x20)
                return "driver arg '" + a + "' contains whitespace";
        const std::string name = a.substr(0, a.find('='));
        for (const char *owned : kOwned)
            if (name == owned)
                return "arg '" + a +
                       "' is owned by the service; set it via the "
                       "request fields instead";
    }
    return "";
}

std::string
RequestSpec::canonical() const
{
    // Sorted args make flag order irrelevant to the job identity;
    // duplicate flags are driver parse errors, so sorting cannot merge
    // two requests that differ in behavior.
    std::vector<std::string> sorted = args;
    std::sort(sorted.begin(), sorted.end());
    char timeout[32];
    std::snprintf(timeout, sizeof(timeout), "%.6g", cellTimeoutSec);
    std::string c = driver;
    c += '\x1f';
    c += metrics;
    c += '\x1f';
    c += timeout;
    for (const auto &a : sorted) {
        c += '\x1f';
        c += a;
    }
    return c;
}

std::string
RequestSpec::jobId() const
{
    std::uint64_t h = 14695981039346656037ull;
    for (const unsigned char c : canonical()) {
        h ^= c;
        h *= 1099511628211ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

Json
RequestSpec::toJson() const
{
    Json doc = Json::object();
    doc.set("driver", driver);
    Json list = Json::array();
    for (const auto &a : args)
        list.push(a);
    doc.set("args", std::move(list));
    doc.set("metrics", metrics);
    doc.set("cell_timeout_sec", cellTimeoutSec);
    return doc;
}

std::string
RequestSpec::fromJson(const Json &doc, RequestSpec &out)
{
    out = RequestSpec{};
    out.driver = doc.str("driver");
    out.metrics = doc.str("metrics", "off");
    out.cellTimeoutSec = doc.num("cell_timeout_sec", 0.0);
    if (const Json *args = doc.get("args")) {
        if (!args->isArray())
            return "args must be an array of strings";
        for (const auto &a : args->items()) {
            if (!a.isString())
                return "args must be an array of strings";
            out.args.push_back(a.asString());
        }
    }
    return out.validate();
}

const char *
jobStateName(JobState s)
{
    switch (s) {
      case JobState::Queued: return "queued";
      case JobState::Running: return "running";
      case JobState::Done: return "done";
      case JobState::Failed: return "failed";
    }
    return "queued";
}

Json
JobCounters::toJson() const
{
    Json doc = Json::object();
    doc.set("cells_run", cellsRun);
    doc.set("cells_cached", cellsCached);
    doc.set("workers_killed", workersKilled);
    doc.set("hung_cells", hungCells);
    doc.set("timed_out_cells", timedOutCells);
    doc.set("requeued_cells", requeuedCells);
    doc.set("downgraded_cells", downgradedCells);
    doc.set("daemon_restarts", daemonRestarts);
    doc.set("rounds", rounds);
    return doc;
}

void
JobCounters::fromJson(const Json &doc)
{
    const auto u = [&doc](const char *key) {
        const Json *v = doc.get(key);
        return v ? v->asUint() : 0;
    };
    cellsRun = u("cells_run");
    cellsCached = u("cells_cached");
    workersKilled = u("workers_killed");
    hungCells = u("hung_cells");
    timedOutCells = u("timed_out_cells");
    requeuedCells = u("requeued_cells");
    downgradedCells = u("downgraded_cells");
    daemonRestarts = u("daemon_restarts");
    rounds = u("rounds");
}

Json
Job::toJson() const
{
    Json doc = Json::object();
    doc.set("v", kProtocolVersion);
    doc.set("job", id);
    doc.set("spec", spec.toJson());
    doc.set("state", jobStateName(state));
    doc.set("class", failureClassName(failClass));
    doc.set("error", error);
    Json evs = Json::array();
    for (const auto &e : events)
        evs.push(e);
    doc.set("events", std::move(evs));
    doc.set("resilience", counters.toJson());
    doc.set("result_path", resultPath);
    return doc;
}

// ---------------------------------------------------------------------------
// Service.
// ---------------------------------------------------------------------------

Service::Service(ServiceConfig cfg) : cfg_(std::move(cfg)) {}

std::string
Service::ckDir(const std::string &jobId) const
{
    return cfg_.stateDir + "/ck/" + jobId;
}

std::string
Service::logDir(const std::string &jobId) const
{
    return cfg_.stateDir + "/logs/" + jobId;
}

std::string
Service::driverPath(const RequestSpec &spec) const
{
    return cfg_.driversDir + "/" + spec.driver;
}

std::vector<std::string>
Service::baseArgs(const std::shared_ptr<Job> &job,
                  const std::string &metrics) const
{
    std::vector<std::string> args = job->spec.args;
    args.push_back("--resume=" + ckDir(job->id));
    args.push_back("--metrics=" + metrics);
    args.push_back("--jobs=1");
    double timeout = job->spec.cellTimeoutSec;
    if (timeout <= 0.0)
        timeout = cfg_.defaultCellTimeoutSec;
    if (timeout > 0.0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "--cell-timeout=%.6g", timeout);
        args.push_back(buf);
    }
    return args;
}

void
Service::addEvent(Job &job, const std::string &what)
{
    // Bounded so a pathological retry loop cannot grow the journal
    // without limit; the counters stay exact either way.
    if (job.events.size() < 256)
        job.events.push_back(what);
}

void
Service::journalJob(const Job &job)
{
    std::string err;
    if (!journal_.save(job.id, job.toJson(), err))
        std::fprintf(stderr, "mapsd: journal save failed: %s\n",
                     err.c_str());
}

void
Service::finishJob(Job &job, JobState state, FailureClass c,
                   const std::string &error)
{
    job.state = state;
    job.failClass = c;
    job.error = error;
    job.ckLock.release();
    addEvent(job, state == JobState::Done
                      ? "done"
                      : "failed (" + std::string(failureClassName(c)) +
                            "): " + error);
    journalJob(job);
    --activeJobs_;
    cv_.notify_all();
    workCv_.notify_all();
}

std::string
Service::recoverJobs()
{
    std::vector<std::string> skipped;
    const auto docs = journal_.loadAll(skipped);
    for (const auto &name : skipped)
        std::fprintf(stderr,
                     "mapsd: skipping unparsable journal entry '%s'\n",
                     name.c_str());
    for (const auto &[id, doc] : docs) {
        RequestSpec spec;
        const Json *specDoc = doc.get("spec");
        if (specDoc == nullptr ||
            !RequestSpec::fromJson(*specDoc, spec).empty()) {
            std::fprintf(stderr,
                         "mapsd: journal entry '%s' has a bad spec; "
                         "dropping it\n",
                         id.c_str());
            journal_.remove(id);
            continue;
        }
        auto job = std::make_shared<Job>();
        job->id = id;
        job->spec = std::move(spec);
        job->error = doc.str("error");
        if (const Json *evs = doc.get("events"))
            for (const auto &e : evs->items())
                if (e.isString() && job->events.size() < 256)
                    job->events.push_back(e.asString());
        if (const Json *ctr = doc.get("resilience"))
            job->counters.fromJson(*ctr);
        job->resultPath = doc.str("result_path");
        const std::string state = doc.str("state");
        const std::string cls = doc.str("class");
        if (state == "done") {
            job->state = JobState::Done;
        } else if (state == "failed") {
            job->state = JobState::Failed;
            job->failClass = cls == "transient"
                                 ? FailureClass::Transient
                                 : FailureClass::Deterministic;
        } else {
            // Queued or mid-run when the previous daemon died: re-queue.
            // Completed cells sit in the checkpoint dir, so the re-run
            // only executes what the crash actually lost.
            job->state = JobState::Queued;
            ++job->counters.daemonRestarts;
            addEvent(*job, "daemon-restart: job re-queued; checkpointed "
                           "cells will not re-run");
            jobQueue_.push_back(job);
            journalJob(*job);
        }
        jobs_[id] = job;
    }
    if (!jobQueue_.empty())
        std::fprintf(stderr, "mapsd: recovered %zu unfinished job(s)\n",
                     jobQueue_.size());
    return "";
}

// ---------------------------------------------------------------------------
// Child invocations.
// ---------------------------------------------------------------------------

namespace {

struct ChaosHook
{
    Service *service;
    std::vector<ChaosEvent> *events;
    std::mutex *mu;
    std::uint64_t *spawns;
    std::shared_ptr<Job> job;
    std::vector<std::string> *jobEvents;
};

std::string
readCapped(const std::string &path, std::size_t cap = 65536)
{
    std::string text, err;
    if (!readWholeFile(path, text, err))
        return "";
    if (text.size() > cap)
        text.resize(cap);
    return text;
}

} // namespace

bool
Service::listCells(const std::shared_ptr<Job> &job,
                   std::vector<ListedCell> &cells, bool &complete,
                   std::string &err)
{
    cells.clear();
    complete = false;
    const std::string base = logDir(job->id) + "/list.r" +
                             std::to_string(job->counters.rounds);
    ChildSpec spec;
    spec.exe = driverPath(job->spec);
    spec.argv = job->spec.args;
    spec.argv.push_back("--resume=" + ckDir(job->id));
    spec.argv.push_back("--metrics=off");
    spec.argv.push_back("--list-cells");
    spec.stdoutPath = base + ".out";
    spec.stderrPath = base + ".err";
    spec.deadlineMs = 600000; // Listing loads checkpoints, never cells.
    const ChildOutcome outcome = runChild(spec);
    const std::string errText = readCapped(spec.stderrPath);
    if (classifyOutcome(outcome, errText) != FailureClass::None) {
        err = "cell listing failed: " +
              (outcome.error.empty()
                   ? "exit " + std::to_string(outcome.exitCode)
                   : outcome.error);
        if (!errText.empty())
            err += "; stderr: " + errText.substr(0, 512);
        return false;
    }
    std::istringstream lines(readCapped(spec.stdoutPath, 1u << 24));
    std::string line;
    bool sawEnd = false;
    while (std::getline(lines, line)) {
        if (line.rfind("list-end ", 0) == 0) {
            sawEnd = true;
            complete = line == "list-end complete";
            continue;
        }
        if (line.rfind("cell\t", 0) != 0)
            continue;
        const std::size_t p1 = line.find('\t', 5);
        const std::size_t p2 =
            p1 == std::string::npos ? p1 : line.find('\t', p1 + 1);
        if (p2 == std::string::npos)
            continue;
        ListedCell cell;
        cell.phase = line.substr(5, p1 - 5);
        cell.id = line.substr(p1 + 1, p2 - p1 - 1);
        cell.cached = line.substr(p2 + 1) == "cached";
        cells.push_back(std::move(cell));
    }
    if (!sawEnd) {
        err = "driver printed no list-end marker";
        return false;
    }
    return true;
}

void
Service::runCell(const CellTask &task)
{
    const auto &job = task.job;
    const std::string base = logDir(job->id) + "/" + task.cellId + ".a" +
                             std::to_string(task.attempt);
    ChildSpec spec;
    spec.exe = driverPath(job->spec);
    spec.argv = baseArgs(job, task.metrics);
    spec.argv.push_back("--only-cells=" + task.cellId);
    spec.stdoutPath = base + ".out";
    spec.stderrPath = base + ".err";
    double timeout = job->spec.cellTimeoutSec;
    if (timeout <= 0.0)
        timeout = cfg_.defaultCellTimeoutSec;
    // The hard deadline backs the cooperative --cell-timeout: twice the
    // budget plus slack, so a SIGSTOPped or wedged child still dies.
    spec.deadlineMs = timeout > 0.0 ? timeout * 2000.0 + 5000.0 : 0.0;

    ChaosHook hook{this, &chaos_, &mu_, &cellSpawns_, job, &job->events};
    const auto afterSpawn = [](pid_t pid, void *arg) {
        auto *h = static_cast<ChaosHook *>(arg);
        const std::lock_guard<std::mutex> lock(*h->mu);
        const std::uint64_t n = ++*h->spawns;
        for (auto &ev : *h->events) {
            if (ev.fired || ev.nth != n)
                continue;
            ev.fired = true;
            if (ev.kind == ChaosEvent::Kind::KillWorker) {
                ::kill(pid, SIGKILL);
                h->job->events.push_back(
                    "chaos: SIGKILL cell spawn #" + std::to_string(n));
            } else {
                ::kill(pid, SIGSTOP);
                h->job->events.push_back(
                    "chaos: SIGSTOP cell spawn #" + std::to_string(n));
            }
        }
    };
    const ChildOutcome outcome =
        runChild(spec, chaos_.empty() ? nullptr : +afterSpawn, &hook);
    const std::string errText = readCapped(spec.stderrPath);
    const FailureClass cls = classifyOutcome(outcome, errText);

    const std::lock_guard<std::mutex> lock(mu_);
    ++job->counters.cellsRun;
    if (outcome.kind == ChildOutcome::Kind::Signaled)
        ++job->counters.workersKilled;
    if (outcome.kind == ChildOutcome::Kind::TimedOut)
        ++job->counters.hungCells;
    if (outcome.kind == ChildOutcome::Kind::Exited &&
        cls == FailureClass::Transient)
        ++job->counters.timedOutCells;

    if (cls == FailureClass::None) {
        --job->outstanding;
    } else if (cls == FailureClass::Transient && task.attempt == 0) {
        // One in-daemon retry per cell; a timed-out full-metrics cell is
        // downgraded so the retry fits the budget. The downgrade is
        // honest: it lands in the event log and the counters, and the
        // checkpoint carries whatever level actually ran.
        CellTask retry{job, task.cellId, task.metrics, 1};
        ++job->counters.requeuedCells;
        std::string note = "cell " + task.cellId +
                           " failed transiently; re-queued";
        if (task.metrics == "full") {
            retry.metrics = "summary";
            ++job->counters.downgradedCells;
            note += " with --metrics=summary";
        }
        addEvent(*job, note);
        cellQueue_.push_back(std::move(retry));
        workCv_.notify_one();
    } else {
        std::string what = "cell " + task.cellId + ": ";
        switch (outcome.kind) {
          case ChildOutcome::Kind::Exited:
            what += "exit " + std::to_string(outcome.exitCode);
            break;
          case ChildOutcome::Kind::Signaled:
            what += "killed by signal " +
                    std::to_string(outcome.termSignal);
            break;
          case ChildOutcome::Kind::TimedOut:
            what += "hard deadline exceeded";
            break;
          case ChildOutcome::Kind::SpawnFailed:
            what += outcome.error;
            break;
        }
        job->roundFailures.push_back(what);
        if (job->roundWorstClass != FailureClass::Deterministic)
            job->roundWorstClass = cls;
        --job->outstanding;
    }
    journalJob(*job);
    if (job->outstanding == 0)
        cv_.notify_all();
}

bool
Service::assemble(const std::shared_ptr<Job> &job, std::string &err,
                  FailureClass &cls)
{
    const std::string resultPath =
        cfg_.stateDir + "/results/" + job->id + ".out";
    const std::string tmpPath = resultPath + ".tmp";
    ChildSpec spec;
    spec.exe = driverPath(job->spec);
    spec.argv = job->spec.args;
    spec.argv.push_back("--resume=" + ckDir(job->id));
    spec.argv.push_back("--metrics=" + job->spec.metrics);
    spec.argv.push_back("--jobs=1");
    spec.stdoutPath = tmpPath;
    spec.stderrPath = logDir(job->id) + "/assemble.err";
    spec.deadlineMs = 600000; // Every cell is cached; this is I/O only.
    const ChildOutcome outcome = runChild(spec);
    const std::string errText = readCapped(spec.stderrPath);
    cls = classifyOutcome(outcome, errText);
    if (cls != FailureClass::None) {
        err = "assembly failed: " +
              (outcome.error.empty()
                   ? "exit " + std::to_string(outcome.exitCode)
                   : outcome.error);
        if (!errText.empty())
            err += "; stderr: " + errText.substr(0, 512);
        std::remove(tmpPath.c_str());
        return false;
    }
    if (std::rename(tmpPath.c_str(), resultPath.c_str()) != 0) {
        err = "cannot publish result file";
        cls = FailureClass::Transient;
        return false;
    }
    job->resultPath = resultPath;
    return true;
}

void
Service::coordinate(std::shared_ptr<Job> job)
{
    // Claim the checkpoint dir up front: cell children then find a lock
    // owned by their parent and adopt it, so parallel cells of one job
    // cooperate while a foreign batch run on the same dir fails fast.
    // A lock left by a SIGKILLed daemon has a dead owner and is taken
    // over here.
    if (!job->ckLock.held()) {
        const std::string lockErr = job->ckLock.acquire(ckDir(job->id));
        if (!lockErr.empty()) {
            const std::lock_guard<std::mutex> lock(mu_);
            finishJob(*job, JobState::Failed, FailureClass::Transient,
                      lockErr);
            return;
        }
    }
    constexpr std::uint64_t kMaxRounds = 64;
    for (;;) {
        {
            const std::lock_guard<std::mutex> lock(mu_);
            if (++job->counters.rounds > kMaxRounds) {
                finishJob(*job, JobState::Failed,
                          FailureClass::Deterministic,
                          "grid did not converge after " +
                              std::to_string(kMaxRounds) + " rounds");
                return;
            }
        }
        std::vector<ListedCell> cells;
        bool complete = false;
        std::string lerr;
        if (!listCells(job, cells, complete, lerr)) {
            const std::lock_guard<std::mutex> lock(mu_);
            finishJob(*job, JobState::Failed, FailureClass::Deterministic,
                      lerr);
            return;
        }
        std::vector<std::string> pending;
        std::uint64_t cached = 0;
        for (const auto &cell : cells) {
            if (cell.cached) {
                ++cached;
            } else if (std::find(pending.begin(), pending.end(),
                                 cell.id) == pending.end()) {
                pending.push_back(cell.id);
            }
        }
        std::unique_lock<std::mutex> lock(mu_);
        if (job->counters.rounds == 1)
            job->counters.cellsCached = cached;
        if (complete)
            break;
        if (pending.empty()) {
            finishJob(*job, JobState::Failed, FailureClass::Deterministic,
                      "driver reported an incomplete grid with no "
                      "pending cells");
            return;
        }
        job->outstanding = pending.size();
        job->roundFailures.clear();
        job->roundWorstClass = FailureClass::None;
        for (const auto &id : pending)
            cellQueue_.push_back(CellTask{job, id, job->spec.metrics, 0});
        journalJob(*job);
        workCv_.notify_all();
        cv_.wait(lock, [&job] { return job->outstanding == 0; });
        if (!job->roundFailures.empty()) {
            std::string what = job->roundFailures.front();
            if (job->roundFailures.size() > 1)
                what += " (+" +
                        std::to_string(job->roundFailures.size() - 1) +
                        " more)";
            finishJob(*job, JobState::Failed, job->roundWorstClass, what);
            return;
        }
    }
    std::string aerr;
    FailureClass acls = FailureClass::None;
    if (!assemble(job, aerr, acls)) {
        const std::lock_guard<std::mutex> lock(mu_);
        finishJob(*job, JobState::Failed, acls, aerr);
        return;
    }
    const std::lock_guard<std::mutex> lock(mu_);
    finishJob(*job, JobState::Done, FailureClass::None, "");
}

// ---------------------------------------------------------------------------
// Threads.
// ---------------------------------------------------------------------------

void
Service::workerLoop()
{
    for (;;) {
        CellTask task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            workCv_.wait(lock, [this] {
                return !cellQueue_.empty() ||
                       (draining_ && activeJobs_ == 0);
            });
            if (cellQueue_.empty())
                return;
            task = std::move(cellQueue_.front());
            cellQueue_.pop_front();
            // Degradation at dispatch: a deep backlog means full-detail
            // metrics are what we can shed while still returning every
            // row the experiment itself produces.
            if (task.metrics == "full" &&
                cellQueue_.size() >= cfg_.degradeDepth) {
                task.metrics = "summary";
                ++task.job->counters.downgradedCells;
                addEvent(*task.job,
                         "congestion: cell " + task.cellId +
                             " downgraded to --metrics=summary (queue "
                             "depth " +
                             std::to_string(cellQueue_.size()) + ")");
            }
        }
        runCell(task);
    }
}

void
Service::schedulerLoop()
{
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] {
                return draining_ || (!jobQueue_.empty() &&
                                     activeJobs_ < cfg_.maxActiveJobs);
            });
            if (draining_)
                return; // Queued jobs stay journaled for the next start.
            job = jobQueue_.front();
            jobQueue_.pop_front();
            ++activeJobs_;
            job->state = JobState::Running;
            addEvent(*job, "started");
            journalJob(*job);
            coordinators_.emplace_back(&Service::coordinate, this, job);
        }
        cv_.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Wire handlers.
// ---------------------------------------------------------------------------

namespace {

Json
errorResponse(const std::string &what, FailureClass cls)
{
    Json doc = Json::object();
    doc.set("v", kProtocolVersion);
    doc.set("ok", false);
    doc.set("error", what);
    doc.set("class", failureClassName(cls));
    return doc;
}

} // namespace

Json
Service::jobSnapshot(const Job &job, bool includeResult) const
{
    Json doc = Json::object();
    doc.set("v", kProtocolVersion);
    doc.set("ok", true);
    doc.set("job", job.id);
    doc.set("state", jobStateName(job.state));
    doc.set("class", failureClassName(job.failClass));
    doc.set("error", job.error);
    Json evs = Json::array();
    for (const auto &e : job.events)
        evs.push(e);
    doc.set("events", std::move(evs));
    doc.set("resilience", job.counters.toJson());
    if (includeResult && job.state == JobState::Done) {
        std::string text, err;
        if (readWholeFile(job.resultPath, text, err)) {
            doc.set("result", text);
        } else {
            doc.set("result", Json());
            doc.set("error", "result file lost: " + err);
        }
    }
    return doc;
}

Json
Service::handleSubmit(const Json &req)
{
    RequestSpec spec;
    const std::string specErr = RequestSpec::fromJson(req, spec);
    if (!specErr.empty())
        return errorResponse(specErr, FailureClass::Deterministic);
    const std::string id = spec.jobId();

    std::error_code ec;
    fs::create_directories(ckDir(id), ec);
    fs::create_directories(logDir(id), ec);

    const std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it != jobs_.end()) {
        Job &job = *it->second;
        if (job.state == JobState::Failed) {
            // Idempotent retry: same spec, same job, same checkpoints —
            // only the work the failure actually lost is repeated.
            job.state = JobState::Queued;
            job.failClass = FailureClass::None;
            job.error.clear();
            job.outstanding = 0;
            job.roundFailures.clear();
            addEvent(job, "resubmitted after failure");
            jobQueue_.push_back(it->second);
            journalJob(job);
            cv_.notify_all();
        }
        Json doc = Json::object();
        doc.set("v", kProtocolVersion);
        doc.set("ok", true);
        doc.set("job", id);
        doc.set("state", jobStateName(job.state));
        doc.set("attached", true);
        return doc;
    }
    if (draining_) {
        Json doc = errorResponse("daemon is draining",
                                 FailureClass::Shed);
        doc.set("retry_after_ms", 1000);
        return doc;
    }
    if (jobQueue_.size() >= cfg_.queueMax) {
        // Backpressure: shed instead of queueing unboundedly. The
        // client's backoff (not ours) decides when to try again.
        Json doc = errorResponse(
            "admission queue full (" + std::to_string(jobQueue_.size()) +
                " jobs queued)",
            FailureClass::Shed);
        doc.set("retry_after_ms", 500);
        return doc;
    }
    auto job = std::make_shared<Job>();
    job->id = id;
    job->spec = std::move(spec);
    addEvent(*job, "accepted");
    jobs_[id] = job;
    jobQueue_.push_back(job);
    journalJob(*job);
    cv_.notify_all();

    Json doc = Json::object();
    doc.set("v", kProtocolVersion);
    doc.set("ok", true);
    doc.set("job", id);
    doc.set("state", jobStateName(job->state));
    doc.set("attached", false);
    doc.set("position", static_cast<std::uint64_t>(jobQueue_.size()));
    return doc;
}

Json
Service::handleWait(const Json &req)
{
    const std::string id = req.str("job");
    double timeoutMs = req.num("timeout_ms", 600000.0);
    timeoutMs = std::min(std::max(timeoutMs, 0.0), 3600000.0);

    std::unique_lock<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return errorResponse("unknown job '" + id + "'",
                             FailureClass::Deterministic);
    const auto job = it->second;
    cv_.wait_for(lock, std::chrono::milliseconds(
                           static_cast<std::int64_t>(timeoutMs)),
                 [this, &job] {
                     return draining_ || job->state == JobState::Done ||
                            job->state == JobState::Failed;
                 });
    return jobSnapshot(*job, /*includeResult=*/true);
}

Json
Service::handleStatus(const Json &req)
{
    const std::string id = req.str("job");
    const std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return errorResponse("unknown job '" + id + "'",
                             FailureClass::Deterministic);
    return jobSnapshot(*it->second, /*includeResult=*/false);
}

Json
Service::handlePing()
{
    const std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t done = 0, failed = 0;
    for (const auto &[id, job] : jobs_) {
        done += job->state == JobState::Done ? 1 : 0;
        failed += job->state == JobState::Failed ? 1 : 0;
    }
    Json doc = Json::object();
    doc.set("v", kProtocolVersion);
    doc.set("ok", true);
    doc.set("op", "pong");
    doc.set("pid", static_cast<std::uint64_t>(::getpid()));
    doc.set("draining", draining_);
    doc.set("workers", static_cast<std::uint64_t>(cfg_.workers));
    doc.set("active_jobs", static_cast<std::uint64_t>(activeJobs_));
    doc.set("queued_jobs", static_cast<std::uint64_t>(jobQueue_.size()));
    doc.set("done_jobs", done);
    doc.set("failed_jobs", failed);
    return doc;
}

Json
Service::handleRequest(const Json &req)
{
    if (req.str("v") != kProtocolVersion)
        return errorResponse("unsupported protocol version '" +
                                 req.str("v") + "' (want " +
                                 kProtocolVersion + ")",
                             FailureClass::Deterministic);
    const std::string op = req.str("op");
    if (op == "ping")
        return handlePing();
    if (op == "submit")
        return handleSubmit(req);
    if (op == "wait")
        return handleWait(req);
    if (op == "status")
        return handleStatus(req);
    if (op == "shutdown") {
        requestDrain();
        Json doc = Json::object();
        doc.set("v", kProtocolVersion);
        doc.set("ok", true);
        doc.set("op", "shutdown");
        return doc;
    }
    return errorResponse("unknown op '" + op + "'",
                         FailureClass::Deterministic);
}

void
Service::serveConnection(int fd)
{
    for (;;) {
        std::string payload, err;
        if (!readFrame(fd, payload, err, 1000)) {
            const bool timedOut =
                err.find("timed out") != std::string::npos;
            bool drain;
            {
                const std::lock_guard<std::mutex> lock(mu_);
                drain = draining_;
            }
            if (timedOut && !drain)
                continue; // Idle connection; keep listening.
            break;
        }
        Json response;
        auto doc = Json::parse(payload, err);
        if (!doc || !doc->isObject())
            response = errorResponse("malformed request: " + err,
                                     FailureClass::Deterministic);
        else
            response = handleRequest(*doc);
        if (!writeFrame(fd, response.dump(), err))
            break;
    }
    ::close(fd);
}

void
Service::acceptLoop(int listenFd)
{
    for (;;) {
        if (runner::interruptSignal() != 0)
            requestDrain();
        {
            const std::lock_guard<std::mutex> lock(mu_);
            if (draining_)
                return;
        }
        pollfd pfd{listenFd, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, 200);
        if (rc <= 0)
            continue;
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        const std::lock_guard<std::mutex> lock(mu_);
        connections_.emplace_back(&Service::serveConnection, this, fd);
    }
}

void
Service::requestDrain()
{
    const std::lock_guard<std::mutex> lock(mu_);
    if (draining_)
        return;
    draining_ = true;
    std::fprintf(stderr, "mapsd: draining (running jobs will finish; "
                         "queued jobs stay journaled)\n");
    cv_.notify_all();
    workCv_.notify_all();
}

int
Service::run(std::string &err)
{
    std::error_code ec;
    fs::create_directories(cfg_.stateDir + "/results", ec);
    if (ec) {
        err = "cannot create state dir '" + cfg_.stateDir +
              "': " + ec.message();
        return 1;
    }
    // One daemon per state dir: a second instance would race the
    // journal and the checkpoint dirs. Stale locks (SIGKILLed daemon)
    // are taken over.
    runner::DirLock stateLock;
    const std::string lockErr = stateLock.acquire(cfg_.stateDir);
    if (!lockErr.empty()) {
        err = lockErr;
        return 1;
    }
    err = journal_.open(cfg_.stateDir);
    if (!err.empty())
        return 1;
    err = parseChaosSpec(cfg_.chaosSpec, chaos_);
    if (!err.empty())
        return 1;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        recoverJobs();
    }
    const int listenFd = listenUnix(cfg_.socketPath, err);
    if (listenFd < 0)
        return 1;
    runner::installSignalHandlers();

    for (unsigned i = 0; i < std::max(1u, cfg_.workers); ++i)
        workers_.emplace_back(&Service::workerLoop, this);
    std::thread scheduler(&Service::schedulerLoop, this);

    std::fprintf(stderr, "mapsd: listening on %s (%u workers)\n",
                 cfg_.socketPath.c_str(), cfg_.workers);
    acceptLoop(listenFd);

    // Drain: admission is closed; running jobs finish and checkpoint.
    scheduler.join();
    {
        // Wake any coordinator waiting for cells that will never run —
        // there are none: workers only exit once activeJobs_ == 0.
        const std::lock_guard<std::mutex> lock(mu_);
        workCv_.notify_all();
    }
    for (auto &t : workers_)
        t.join();
    std::vector<std::thread> coordinators, connections;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        coordinators.swap(coordinators_);
        connections.swap(connections_);
    }
    for (auto &t : coordinators)
        t.join();
    for (auto &t : connections)
        t.join();
    ::close(listenFd);
    ::unlink(cfg_.socketPath.c_str());
    std::fprintf(stderr, "mapsd: drained\n");
    return 0;
}

} // namespace maps::service
