/**
 * @file
 * Client side of maps-svc-v1: one-shot RPCs plus the retry loop mapsctl
 * uses.
 *
 * Retry lives in the client, not the daemon, because the client is the
 * only party that knows how long the caller is willing to wait. The
 * daemon's job is to classify: its responses carry a failure class, and
 * the policy here retries only what is honest to retry — transient
 * failures and shed admissions, with exponential backoff against a
 * bounded budget. Deterministic failures are never retried: replaying a
 * deterministic simulation produces the same failure and burns the
 * budget lying about it. Retries are safe because job ids are content
 * hashes: resubmitting attaches to the same job and its checkpoints, so
 * work is never repeated or duplicated.
 */
#ifndef MAPS_SERVICE_CLIENT_HPP
#define MAPS_SERVICE_CLIENT_HPP

#include <string>

#include "service/json.hpp"
#include "service/service.hpp"

namespace maps::service {

struct RetryPolicy
{
    int budget = 5;        ///< Max retries (not counting the first try).
    double baseMs = 200;   ///< First backoff delay.
    double capMs = 5000;   ///< Backoff ceiling.

    /**
     * Delay before retry number @p attempt (0-based) after a failure of
     * class @p c, or a negative value when no retry is allowed — either
     * the class is not retryable or the budget is spent.
     */
    double nextDelayMs(FailureClass c, int attempt) const;
};

class Client
{
  public:
    explicit Client(std::string socketPath)
        : socketPath_(std::move(socketPath))
    {
    }

    /**
     * One request/response on a fresh connection. Returns the response
     * document, or nullopt with @p err set (connect/frame/parse
     * failure — all transient from the retry loop's point of view:
     * the daemon may be restarting).
     */
    std::optional<Json> rpc(const Json &request, std::string &err,
                            int timeoutMs = -1);

    /**
     * Submit @p spec and wait for a terminal state, riding out shed
     * admissions, transient job failures, daemon restarts and dropped
     * connections with @p policy. Returns the final job snapshot (its
     * "state" is "done" or "failed"), or nullopt with @p err when the
     * budget is exhausted or the failure is deterministic. Progress and
     * every retry decision are narrated to @p log when non-null.
     */
    std::optional<Json> submitAndWait(const RequestSpec &spec,
                                      const RetryPolicy &policy,
                                      std::string &err,
                                      std::FILE *log = nullptr);

  private:
    std::string socketPath_;
};

} // namespace maps::service

#endif // MAPS_SERVICE_CLIENT_HPP
