#include "service/journal.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

namespace maps::service {

namespace fs = std::filesystem;

bool
atomicWriteFile(const std::string &path, const std::string &contents,
                std::string &err)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            err = "cannot open '" + tmp + "' for writing";
            return false;
        }
        out << contents;
        out.flush();
        if (!out) {
            err = "short write to '" + tmp + "'";
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        err = "rename '" + tmp + "' -> '" + path +
              "': " + std::strerror(errno);
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
readWholeFile(const std::string &path, std::string &out, std::string &err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        err = "cannot open '" + path + "'";
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

std::string
Journal::open(const std::string &dir)
{
    std::error_code ec;
    const fs::path jobs = fs::path(dir) / "jobs";
    fs::create_directories(jobs, ec);
    if (ec)
        return "cannot create journal dir '" + jobs.string() +
               "': " + ec.message();
    jobsDir_ = jobs.string();
    return "";
}

std::string
Journal::pathFor(const std::string &jobId) const
{
    return jobsDir_ + "/" + jobId + ".json";
}

bool
Journal::save(const std::string &jobId, const Json &state,
              std::string &err) const
{
    return atomicWriteFile(pathFor(jobId), state.dump() + "\n", err);
}

void
Journal::remove(const std::string &jobId) const
{
    std::remove(pathFor(jobId).c_str());
}

std::vector<std::pair<std::string, Json>>
Journal::loadAll(std::vector<std::string> &skipped) const
{
    std::vector<std::pair<std::string, Json>> jobs;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(jobsDir_, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.size() <= 5 ||
            name.compare(name.size() - 5, 5, ".json") != 0) {
            // Torn tmp leftovers from a crash mid-publish; harmless.
            skipped.push_back(name);
            continue;
        }
        std::string text, err;
        if (!readWholeFile(entry.path().string(), text, err)) {
            skipped.push_back(name);
            continue;
        }
        auto doc = Json::parse(text, err);
        if (!doc || !doc->isObject()) {
            skipped.push_back(name);
            continue;
        }
        jobs.emplace_back(name.substr(0, name.size() - 5),
                          std::move(*doc));
    }
    std::sort(jobs.begin(), jobs.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    return jobs;
}

} // namespace maps::service
