/**
 * @file
 * Minimal JSON value, parser and serializer for the maps::service wire
 * protocol (maps-svc-v1).
 *
 * Scope is deliberately small: UTF-8 pass-through strings with the
 * standard escapes, doubles for numbers, insertion-ordered objects so
 * serialized responses are deterministic and diff-able. The parser is
 * strict (trailing garbage, truncation, bad escapes and oversized
 * nesting are errors) because it sits on a network boundary and
 * half-written or malicious frames must be rejected, never guessed at.
 */
#ifndef MAPS_SERVICE_JSON_HPP
#define MAPS_SERVICE_JSON_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace maps::service {

class Json
{
  public:
    enum class Type : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Json() = default;
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double v) : type_(Type::Number), num_(v) {}
    Json(int v) : type_(Type::Number), num_(v) {}
    Json(std::uint64_t v)
        : type_(Type::Number), num_(static_cast<double>(v))
    {
    }
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}
    Json(const char *s) : type_(Type::String), str_(s) {}

    static Json array() { return Json(Type::Array); }
    static Json object() { return Json(Type::Object); }

    /**
     * Strict parse of a complete JSON document. Returns nullopt and
     * fills @p err on any malformation; never throws.
     */
    static std::optional<Json> parse(const std::string &text,
                                     std::string &err);

    std::string dump() const;

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    bool asBool(bool fallback = false) const
    {
        return isBool() ? bool_ : fallback;
    }
    double asNumber(double fallback = 0.0) const
    {
        return isNumber() ? num_ : fallback;
    }
    std::uint64_t asUint(std::uint64_t fallback = 0) const;
    const std::string &asString() const { return str_; }
    std::string asString(const std::string &fallback) const
    {
        return isString() ? str_ : fallback;
    }

    /// @name Object access
    /// @{
    /** nullptr when absent or not an object. */
    const Json *get(const std::string &key) const;
    /** Typed conveniences over get(). */
    std::string str(const std::string &key,
                    const std::string &fallback = "") const;
    double num(const std::string &key, double fallback = 0.0) const;
    bool boolean(const std::string &key, bool fallback = false) const;
    /** Insert or replace; turns a Null value into an object first. */
    Json &set(const std::string &key, Json value);
    const std::vector<std::pair<std::string, Json>> &members() const
    {
        return members_;
    }
    /// @}

    /// @name Array access
    /// @{
    Json &push(Json value);
    const std::vector<Json> &items() const { return items_; }
    std::size_t size() const { return items_.size(); }
    /// @}

    /** JSON string escaping (shared with ad-hoc emitters). */
    static std::string escape(const std::string &raw);

  private:
    explicit Json(Type t) : type_(t) {}

    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> items_;
    std::vector<std::pair<std::string, Json>> members_;
};

} // namespace maps::service

#endif // MAPS_SERVICE_JSON_HPP
