/**
 * @file
 * maps-svc-v1 wire layer: UNIX-domain sockets plus a length-prefixed
 * JSON framing.
 *
 * A frame is the ASCII decimal payload length, one '\n', then exactly
 * that many payload bytes (the JSON document). The prefix keeps the
 * protocol trivially debuggable (`printf '2\n{}' | nc -U ...`) while
 * letting the reader pre-size its buffer and reject oversized or
 * malformed frames before buffering unbounded garbage — a half-written
 * or hostile frame costs at most kMaxFrameBytes and one connection.
 *
 * All calls return explicit errors instead of throwing; the daemon must
 * survive any sequence of bytes a client sends.
 */
#ifndef MAPS_SERVICE_WIRE_HPP
#define MAPS_SERVICE_WIRE_HPP

#include <cstddef>
#include <string>

namespace maps::service {

/** Protocol identifier carried in every request and response. */
inline constexpr const char *kProtocolVersion = "maps-svc-v1";

/** Upper bound on one frame's payload (defense against flooding). */
inline constexpr std::size_t kMaxFrameBytes = 64u * 1024 * 1024;

/**
 * Create, bind and listen on a UNIX socket at @p path (any stale socket
 * file is unlinked first). Returns the fd, or -1 with @p err set.
 */
int listenUnix(const std::string &path, std::string &err);

/** Connect to the daemon socket. Returns the fd, or -1 with @p err. */
int connectUnix(const std::string &path, std::string &err);

/**
 * Write one frame. Handles short writes and EINTR; uses MSG_NOSIGNAL so
 * a dead peer surfaces as an error, not SIGPIPE. False + @p err on
 * failure.
 */
bool writeFrame(int fd, const std::string &payload, std::string &err);

/**
 * Read one complete frame into @p payload. @p timeout_ms < 0 blocks
 * forever; otherwise the whole frame must arrive within the budget.
 * Returns false with @p err on EOF, timeout, oversize or malformed
 * length prefix.
 */
bool readFrame(int fd, std::string &payload, std::string &err,
               int timeout_ms = -1);

} // namespace maps::service

#endif // MAPS_SERVICE_WIRE_HPP
