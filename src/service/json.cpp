#include "service/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace maps::service {

namespace {

/** Recursive-descent parser with a hard nesting bound. */
class Parser
{
  public:
    Parser(const std::string &text, std::string &err)
        : text_(text), err_(err)
    {
    }

    std::optional<Json> document()
    {
        skipWs();
        auto v = value(0);
        if (!v)
            return std::nullopt;
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing garbage after document");
            return std::nullopt;
        }
        return v;
    }

  private:
    static constexpr int kMaxDepth = 64;

    void fail(const std::string &what)
    {
        if (err_.empty())
            err_ = what + " at byte " + std::to_string(pos_);
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool literal(const char *lit)
    {
        const std::size_t n = std::char_traits<char>::length(lit);
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    std::optional<Json> value(int depth)
    {
        if (depth > kMaxDepth) {
            fail("nesting too deep");
            return std::nullopt;
        }
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return std::nullopt;
        }
        const char c = text_[pos_];
        if (c == '{')
            return object(depth);
        if (c == '[')
            return array(depth);
        if (c == '"') {
            std::string s;
            if (!string(s))
                return std::nullopt;
            return Json(std::move(s));
        }
        if (literal("true"))
            return Json(true);
        if (literal("false"))
            return Json(false);
        if (literal("null"))
            return Json();
        return number();
    }

    std::optional<Json> object(int depth)
    {
        ++pos_; // '{'
        Json out = Json::object();
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return out;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (pos_ >= text_.size() || text_[pos_] != '"' ||
                !string(key)) {
                fail("expected object key");
                return std::nullopt;
            }
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':') {
                fail("expected ':'");
                return std::nullopt;
            }
            ++pos_;
            auto v = value(depth + 1);
            if (!v)
                return std::nullopt;
            out.set(key, std::move(*v));
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return out;
            }
            fail("expected ',' or '}'");
            return std::nullopt;
        }
    }

    std::optional<Json> array(int depth)
    {
        ++pos_; // '['
        Json out = Json::array();
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return out;
        }
        for (;;) {
            auto v = value(depth + 1);
            if (!v)
                return std::nullopt;
            out.push(std::move(*v));
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return out;
            }
            fail("expected ',' or ']'");
            return std::nullopt;
        }
    }

    bool string(std::string &out)
    {
        ++pos_; // '"'
        out.clear();
        while (pos_ < text_.size()) {
            const unsigned char c =
                static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c < 0x20) {
                fail("unescaped control character in string");
                return false;
            }
            if (c != '\\') {
                out += static_cast<char>(c);
                ++pos_;
                continue;
            }
            if (++pos_ >= text_.size()) {
                fail("truncated escape");
                return false;
            }
            const char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                    return false;
                }
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    if (!std::isxdigit(static_cast<unsigned char>(h))) {
                        fail("bad \\u escape");
                        return false;
                    }
                    cp = cp * 16 +
                         static_cast<unsigned>(
                             h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
                }
                // Encode as UTF-8 (surrogate pairs are passed through
                // as two 3-byte sequences; the protocol never emits
                // them, this just keeps round-trips lossless enough).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xC0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                }
                break;
              }
              default:
                fail("bad escape");
                return false;
            }
        }
        fail("unterminated string");
        return false;
    }

    std::optional<Json> number()
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start) {
            fail("expected a value");
            return std::nullopt;
        }
        const std::string frag = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double v = std::strtod(frag.c_str(), &end);
        if (end != frag.c_str() + frag.size() || !std::isfinite(v)) {
            fail("bad number '" + frag + "'");
            return std::nullopt;
        }
        return Json(v);
    }

    const std::string &text_;
    std::string &err_;
    std::size_t pos_ = 0;
};

void
dumpTo(const Json &v, std::string &out)
{
    switch (v.type()) {
      case Json::Type::Null:
        out += "null";
        break;
      case Json::Type::Bool:
        out += v.asBool() ? "true" : "false";
        break;
      case Json::Type::Number: {
        const double d = v.asNumber();
        // Integers (the common case: counts, pids, exit codes) render
        // without a decimal point; everything else with %.17g so the
        // value round-trips exactly.
        if (d == std::floor(d) && std::fabs(d) < 1e15) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.0f", d);
            out += buf;
        } else {
            char buf[40];
            std::snprintf(buf, sizeof(buf), "%.17g", d);
            out += buf;
        }
        break;
      }
      case Json::Type::String:
        out += Json::escape(v.asString());
        break;
      case Json::Type::Array: {
        out += '[';
        bool first = true;
        for (const auto &item : v.items()) {
            if (!first)
                out += ',';
            first = false;
            dumpTo(item, out);
        }
        out += ']';
        break;
      }
      case Json::Type::Object: {
        out += '{';
        bool first = true;
        for (const auto &[key, value] : v.members()) {
            if (!first)
                out += ',';
            first = false;
            out += Json::escape(key);
            out += ':';
            dumpTo(value, out);
        }
        out += '}';
        break;
      }
    }
}

} // namespace

std::optional<Json>
Json::parse(const std::string &text, std::string &err)
{
    err.clear();
    Parser parser(text, err);
    auto v = parser.document();
    if (!v && err.empty())
        err = "malformed JSON";
    return v;
}

std::string
Json::dump() const
{
    std::string out;
    dumpTo(*this, out);
    return out;
}

std::uint64_t
Json::asUint(std::uint64_t fallback) const
{
    if (!isNumber() || num_ < 0.0)
        return fallback;
    return static_cast<std::uint64_t>(num_);
}

const Json *
Json::get(const std::string &key) const
{
    for (const auto &[k, v] : members_)
        if (k == key)
            return &v;
    return nullptr;
}

std::string
Json::str(const std::string &key, const std::string &fallback) const
{
    const auto *v = get(key);
    return v && v->isString() ? v->asString() : fallback;
}

double
Json::num(const std::string &key, double fallback) const
{
    const auto *v = get(key);
    return v && v->isNumber() ? v->asNumber() : fallback;
}

bool
Json::boolean(const std::string &key, bool fallback) const
{
    const auto *v = get(key);
    return v && v->isBool() ? v->asBool() : fallback;
}

Json &
Json::set(const std::string &key, Json value)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    for (auto &[k, v] : members_) {
        if (k == key) {
            v = std::move(value);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(value));
    return *this;
}

Json &
Json::push(Json value)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    items_.push_back(std::move(value));
    return *this;
}

std::string
Json::escape(const std::string &raw)
{
    std::string out = "\"";
    for (const char ch : raw) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(ch)));
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    out += '"';
    return out;
}

} // namespace maps::service
