/**
 * @file
 * Crash-safe job journal for mapsd.
 *
 * Every accepted request gets one JSON document under
 * `<state-dir>/jobs/<jobid>.json`, rewritten atomically (tmp + rename)
 * at each state transition. A SIGKILLed daemon therefore restarts with
 * an exact picture of which jobs were queued, running or finished, and
 * re-queues the unfinished ones; the per-cell `--resume` checkpoints
 * written by the driver children carry the actual results, so replaying
 * a job never repeats completed work.
 *
 * The journal is deliberately not a write-ahead log: each file is the
 * full current state of one job, so recovery is "read every file",
 * with no ordering or truncation cases to reason about. A torn write
 * can only ever produce an unparsable tmp file, never a corrupt
 * published one.
 */
#ifndef MAPS_SERVICE_JOURNAL_HPP
#define MAPS_SERVICE_JOURNAL_HPP

#include <string>
#include <utility>
#include <vector>

#include "service/json.hpp"

namespace maps::service {

/** Atomically publish @p contents at @p path (same-dir tmp + rename). */
bool atomicWriteFile(const std::string &path, const std::string &contents,
                     std::string &err);

/** Slurp a whole file. False + @p err if unreadable. */
bool readWholeFile(const std::string &path, std::string &out,
                   std::string &err);

class Journal
{
  public:
    /** Create `<dir>/jobs/` if needed. Empty error string on success. */
    std::string open(const std::string &dir);

    bool isOpen() const { return !jobsDir_.empty(); }

    /** Atomically persist one job's full state document. */
    bool save(const std::string &jobId, const Json &state,
              std::string &err) const;

    /** Delete a job's journal entry (after the client fetched it). */
    void remove(const std::string &jobId) const;

    /**
     * Load every parsable job document, sorted by job id so recovery
     * order is deterministic. Unparsable files (torn tmp leftovers) are
     * skipped and reported in @p skipped.
     */
    std::vector<std::pair<std::string, Json>>
    loadAll(std::vector<std::string> &skipped) const;

    std::string pathFor(const std::string &jobId) const;

  private:
    std::string jobsDir_;
};

} // namespace maps::service

#endif // MAPS_SERVICE_JOURNAL_HPP
