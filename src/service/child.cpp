#include "service/child.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace maps::service {

namespace {

/** Open a redirect target (or /dev/null) for a child's stdio. */
int
openRedirect(const std::string &path)
{
    const char *target = path.empty() ? "/dev/null" : path.c_str();
    return ::open(target, O_CREAT | O_WRONLY | O_TRUNC, 0644);
}

double
msSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

ChildOutcome
runChild(const ChildSpec &spec, void (*afterSpawn)(pid_t, void *),
         void *hookArg)
{
    ChildOutcome out;
    const auto start = std::chrono::steady_clock::now();

    std::vector<char *> argv;
    argv.push_back(const_cast<char *>(spec.exe.c_str()));
    for (const auto &a : spec.argv)
        argv.push_back(const_cast<char *>(a.c_str()));
    argv.push_back(nullptr);

    // A pipe with CLOEXEC on the write end reports exec failures back
    // to the parent: a successful exec closes it silently, a failed one
    // writes errno. Without this, a missing binary would look like a
    // child that exited 127 — a deterministic failure we could not
    // distinguish from the driver's own exit codes.
    int execPipe[2];
    if (::pipe2(execPipe, O_CLOEXEC) != 0) {
        out.error = std::string("pipe2: ") + std::strerror(errno);
        return out;
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
        out.error = std::string("fork: ") + std::strerror(errno);
        ::close(execPipe[0]);
        ::close(execPipe[1]);
        return out;
    }
    if (pid == 0) {
        ::close(execPipe[0]);
        const int outFd = openRedirect(spec.stdoutPath);
        const int errFd = openRedirect(spec.stderrPath);
        if (outFd >= 0)
            ::dup2(outFd, STDOUT_FILENO);
        if (errFd >= 0)
            ::dup2(errFd, STDERR_FILENO);
        ::execv(spec.exe.c_str(), argv.data());
        const int e = errno;
        (void)!::write(execPipe[1], &e, sizeof(e));
        ::_exit(127);
    }

    ::close(execPipe[1]);
    if (afterSpawn != nullptr)
        afterSpawn(pid, hookArg);

    // Reap first, read the exec pipe second. The order matters: a child
    // stopped or killed before it reaches execv (the chaos hook fires
    // between fork and exec on purpose) never closes the pipe by
    // exec'ing, so a blocking read here would hang the worker and
    // disable the deadline. Once the child is reaped the write end is
    // closed either way and the read below cannot block.
    bool killedForDeadline = false;
    int status = 0;
    for (;;) {
        const pid_t r = ::waitpid(pid, &status, WNOHANG);
        if (r == pid)
            break;
        if (r < 0 && errno != EINTR) {
            out.kind = ChildOutcome::Kind::SpawnFailed;
            out.error = std::string("waitpid: ") + std::strerror(errno);
            out.elapsedMs = msSince(start);
            ::close(execPipe[0]);
            return out;
        }
        if (!killedForDeadline && spec.deadlineMs > 0.0 &&
            msSince(start) >= spec.deadlineMs) {
            // SIGCONT first: SIGKILL works on a stopped process, but
            // any descendants it was meant to reap resume and exit
            // cleanly instead of lingering stopped forever.
            ::kill(pid, SIGCONT);
            ::kill(pid, SIGKILL);
            killedForDeadline = true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    out.elapsedMs = msSince(start);

    int execErrno = 0;
    const ssize_t got =
        ::read(execPipe[0], &execErrno, sizeof(execErrno));
    ::close(execPipe[0]);
    if (got == sizeof(execErrno)) {
        out.kind = ChildOutcome::Kind::SpawnFailed;
        out.error = "exec '" + spec.exe +
                    "': " + std::strerror(execErrno);
        return out;
    }

    if (killedForDeadline) {
        out.kind = ChildOutcome::Kind::TimedOut;
    } else if (WIFEXITED(status)) {
        out.kind = ChildOutcome::Kind::Exited;
        out.exitCode = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
        out.kind = ChildOutcome::Kind::Signaled;
        out.termSignal = WTERMSIG(status);
    } else {
        out.kind = ChildOutcome::Kind::Signaled;
    }
    return out;
}

} // namespace maps::service
