/**
 * @file
 * maps::service — the mapsd experiment service.
 *
 * mapsd turns the batch drivers into a long-running, crash-tolerant
 * service: clients submit an experiment request (any fig/tab/abl
 * driver) over a UNIX socket, the daemon discovers the driver's cell
 * grid (`--list-cells`), executes pending cells out of process on a
 * shared worker pool (`--only-cells=ID --resume=DIR`), and finally
 * assembles the result with one fully-cached `--resume` pass whose
 * stdout is byte-identical to a clean batch run. Robustness features:
 *
 *  - deadlines: the request's per-cell budget is propagated as
 *    `--cell-timeout` (cooperative) plus a hard SIGKILL deadline in the
 *    monitor, so even a SIGSTOPped cell cannot hold a worker forever;
 *  - backpressure: admission is a bounded queue; when full, submits are
 *    shed with an honest `class:"shed"` response and a retry hint
 *    instead of queueing unboundedly;
 *  - graceful degradation: under congestion (deep cell queue) or after
 *    a cell timeout, full-metrics cells are downgraded to
 *    `--metrics=summary` and re-queued once — every downgrade is
 *    recorded in the job's event log, never silent;
 *  - crash safety: every job-state transition is journaled atomically;
 *    a SIGKILLed daemon restarts, re-queues unfinished jobs, and the
 *    per-cell checkpoints guarantee no completed work repeats and no
 *    cell is lost or duplicated;
 *  - drain: SIGTERM stops admission, lets running cells finish and
 *    checkpoints the rest for the next daemon.
 *
 * Failure classification (what mapsctl's retry loop keys on):
 * transient failures (timeouts, killed workers, shed admissions) are
 * safe to retry because checkpoints make re-execution idempotent;
 * deterministic failures (bad request, driver assertion, exec failure)
 * are never retried.
 */
#ifndef MAPS_SERVICE_SERVICE_HPP
#define MAPS_SERVICE_SERVICE_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/dirlock.hpp"
#include "service/child.hpp"
#include "service/journal.hpp"
#include "service/json.hpp"

namespace maps::service {

/** How a failed step should be treated by retry logic. */
enum class FailureClass : std::uint8_t
{
    None,          ///< No failure.
    Transient,     ///< Safe to retry (timeout, killed worker, shed).
    Deterministic, ///< Retrying reproduces the failure; don't.
    Shed,          ///< Rejected at admission; retry after backoff.
};

const char *failureClassName(FailureClass c);

/**
 * Classify a finished child. @p errText is the child's captured stderr;
 * a cooperative `--cell-timeout` cancellation exits non-zero but names
 * the flag in its failure report, which marks it transient.
 */
FailureClass classifyOutcome(const ChildOutcome &outcome,
                             const std::string &errText);

/**
 * One deterministic chaos injection, mirroring the maps::fault
 * `kind:surface@trigger` spec grammar: `kill:worker@n=3` SIGKILLs the
 * 3rd spawned cell child, `hang:worker@n=5` SIGSTOPs the 5th (the hard
 * deadline later SIGKILLs it). Each event fires exactly once.
 */
struct ChaosEvent
{
    enum class Kind : std::uint8_t
    {
        KillWorker,
        HangWorker,
    };
    Kind kind = Kind::KillWorker;
    std::uint64_t nth = 0; ///< 1-based cell-spawn ordinal to hit.
    bool fired = false;
};

/** Parse `ev[,ev...]`. Returns an error string ("" on success). */
std::string parseChaosSpec(const std::string &spec,
                           std::vector<ChaosEvent> &out);

/**
 * A canonicalized experiment request. The job id is a stable hash of
 * the canonical form, so resubmitting the same request attaches to the
 * same job, checkpoints and result — the idempotency that makes client
 * retries safe.
 */
struct RequestSpec
{
    std::string driver;            ///< Driver binary name (no path).
    std::vector<std::string> args; ///< Pass-through driver flags.
    std::string metrics = "off";   ///< off | summary | full.
    double cellTimeoutSec = 0.0;   ///< Per-cell budget; 0 = unlimited.

    /** Validate fields; "" on success. Daemon-owned flags (--resume,
     *  --only-cells, --list-cells, --jobs, --metrics, --cell-timeout)
     *  are rejected in @ref args. */
    std::string validate() const;

    std::string canonical() const;
    /** 16-hex FNV-1a of canonical(). */
    std::string jobId() const;

    Json toJson() const;
    static std::string fromJson(const Json &doc, RequestSpec &out);
};

enum class JobState : std::uint8_t
{
    Queued,
    Running,
    Done,
    Failed,
};

const char *jobStateName(JobState s);

/** Resilience counters reported with every job (and journaled). */
struct JobCounters
{
    std::uint64_t cellsRun = 0;        ///< Cells executed by workers.
    std::uint64_t cellsCached = 0;     ///< Cells found checkpointed.
    std::uint64_t workersKilled = 0;   ///< Cell children killed by signal.
    std::uint64_t hungCells = 0;       ///< Hard-deadline SIGKILLs.
    std::uint64_t timedOutCells = 0;   ///< Cooperative --cell-timeout.
    std::uint64_t requeuedCells = 0;   ///< In-daemon single retries.
    std::uint64_t downgradedCells = 0; ///< full -> summary degradations.
    std::uint64_t daemonRestarts = 0;  ///< Recoveries that re-queued us.
    std::uint64_t rounds = 0;          ///< list->run fixpoint iterations.

    Json toJson() const;
    void fromJson(const Json &doc);
};

struct Job
{
    std::string id;
    RequestSpec spec;
    JobState state = JobState::Queued;
    FailureClass failClass = FailureClass::None;
    std::string error;
    std::vector<std::string> events;
    JobCounters counters;
    std::string resultPath; ///< Published assembly output (when Done).

    /**
     * Held by the daemon for the job's whole active span so parallel
     * cell children (which see the lock owned by their parent) adopt it
     * instead of fighting each other for the checkpoint directory.
     */
    runner::DirLock ckLock;

    // Coordinator-round bookkeeping (guarded by the service mutex).
    std::size_t outstanding = 0;
    std::vector<std::string> roundFailures;
    FailureClass roundWorstClass = FailureClass::None;

    Json toJson() const;
};

struct ServiceConfig
{
    std::string socketPath;
    std::string stateDir;
    std::string driversDir; ///< Directory holding the driver binaries.
    unsigned workers = 4;
    std::size_t queueMax = 16;      ///< Shed submits beyond this depth.
    std::size_t maxActiveJobs = 2;  ///< Concurrent coordinators.
    std::size_t degradeDepth = 32;  ///< Cell-queue depth forcing summary.
    double defaultCellTimeoutSec = 0.0;
    std::string chaosSpec;          ///< "" = no injected chaos.
};

class Service
{
  public:
    explicit Service(ServiceConfig cfg);

    /**
     * Serve until drained (SIGTERM/SIGINT or a shutdown request).
     * Returns a process exit code; @p err is set on startup failure.
     */
    int run(std::string &err);

    /** Idempotent; also triggered by SIGTERM. */
    void requestDrain();

  private:
    struct CellTask
    {
        std::shared_ptr<Job> job;
        std::string cellId;
        std::string metrics; ///< Effective level for this attempt.
        int attempt = 0;
    };

    // Startup / recovery.
    std::string recoverJobs();

    // Threads.
    void acceptLoop(int listenFd);
    void serveConnection(int fd);
    void schedulerLoop();
    void workerLoop();
    void coordinate(std::shared_ptr<Job> job);

    // Request handlers (return the response document).
    Json handleRequest(const Json &req);
    Json handleSubmit(const Json &req);
    Json handleWait(const Json &req);
    Json handleStatus(const Json &req);
    Json handlePing() ;

    // Job plumbing. Callers hold mu_ unless noted.
    Json jobSnapshot(const Job &job, bool includeResult) const;
    void journalJob(const Job &job);
    void addEvent(Job &job, const std::string &what);
    void finishJob(Job &job, JobState state, FailureClass c,
                   const std::string &error);

    // Child invocations (no lock held).
    struct ListedCell
    {
        std::string phase;
        std::string id;
        bool cached = false;
    };
    bool listCells(const std::shared_ptr<Job> &job,
                   std::vector<ListedCell> &cells, bool &complete,
                   std::string &err);
    void runCell(const CellTask &task);
    bool assemble(const std::shared_ptr<Job> &job, std::string &err,
                  FailureClass &cls);

    std::string driverPath(const RequestSpec &spec) const;
    std::string ckDir(const std::string &jobId) const;
    std::string logDir(const std::string &jobId) const;
    std::vector<std::string> baseArgs(const std::shared_ptr<Job> &job,
                                      const std::string &metrics) const;

    ServiceConfig cfg_;
    Journal journal_;
    std::vector<ChaosEvent> chaos_;

    mutable std::mutex mu_;
    std::condition_variable cv_;        ///< Job-state changes.
    std::condition_variable workCv_;    ///< Cell-queue pushes.
    std::map<std::string, std::shared_ptr<Job>> jobs_;
    std::deque<std::shared_ptr<Job>> jobQueue_;
    std::deque<CellTask> cellQueue_;
    std::size_t activeJobs_ = 0;
    std::uint64_t cellSpawns_ = 0; ///< Chaos trigger ordinal.
    bool draining_ = false;

    std::vector<std::thread> workers_;
    std::vector<std::thread> coordinators_;
    std::vector<std::thread> connections_;
};

} // namespace maps::service

#endif // MAPS_SERVICE_SERVICE_HPP
