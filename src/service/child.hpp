/**
 * @file
 * Out-of-process cell execution for mapsd.
 *
 * The daemon never runs simulation code in its own address space: each
 * cell (or assembly pass) is a fork/exec of the existing driver binary,
 * so a crashing, hanging or memory-hungry cell can at worst cost one
 * child process. The monitor loop enforces a *hard* wall-clock deadline
 * on top of the driver's own cooperative `--cell-timeout`: a child that
 * is stopped (chaos SIGSTOP) or stuck in uninterruptible I/O still gets
 * SIGKILLed when the deadline lapses, which is what makes per-request
 * deadlines trustworthy.
 */
#ifndef MAPS_SERVICE_CHILD_HPP
#define MAPS_SERVICE_CHILD_HPP

#include <cstdint>
#include <string>
#include <vector>

#include <sys/types.h>

namespace maps::service {

struct ChildOutcome
{
    enum class Kind : std::uint8_t
    {
        Exited,      ///< Ran to completion; see exitCode.
        Signaled,    ///< Killed by a signal (crash or external kill).
        TimedOut,    ///< Hard deadline lapsed; we SIGKILLed it.
        SpawnFailed, ///< fork/exec never produced a running child.
    };

    Kind kind = Kind::SpawnFailed;
    int exitCode = -1;       ///< Valid when kind == Exited.
    int termSignal = 0;      ///< Valid when kind == Signaled.
    double elapsedMs = 0.0;
    std::string error;       ///< Human-readable detail for SpawnFailed.
};

struct ChildSpec
{
    std::string exe;               ///< Absolute path to the binary.
    std::vector<std::string> argv; ///< Arguments (argv[0] excluded).
    std::string stdoutPath;        ///< Redirect target ("" = /dev/null).
    std::string stderrPath;        ///< Redirect target ("" = /dev/null).
    /** Hard wall-clock budget; <= 0 means unbounded. */
    double deadlineMs = 0.0;
};

/**
 * Spawn @p spec and wait for it, enforcing the hard deadline. The hook,
 * if set, runs in the parent right after a successful fork with the
 * child's pid — the chaos harness uses it to SIGKILL/SIGSTOP real
 * workers at deterministic points.
 */
ChildOutcome runChild(const ChildSpec &spec,
                      void (*afterSpawn)(pid_t, void *) = nullptr,
                      void *hookArg = nullptr);

} // namespace maps::service

#endif // MAPS_SERVICE_CHILD_HPP
