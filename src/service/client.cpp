#include "service/client.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include <unistd.h>

#include "service/wire.hpp"

namespace maps::service {

double
RetryPolicy::nextDelayMs(FailureClass c, int attempt) const
{
    if (c != FailureClass::Transient && c != FailureClass::Shed)
        return -1.0;
    if (attempt >= budget)
        return -1.0;
    const double delay = baseMs * std::pow(2.0, attempt);
    return std::min(delay, capMs);
}

std::optional<Json>
Client::rpc(const Json &request, std::string &err, int timeoutMs)
{
    const int fd = connectUnix(socketPath_, err);
    if (fd < 0)
        return std::nullopt;
    std::optional<Json> result;
    std::string payload;
    if (writeFrame(fd, request.dump(), err) &&
        readFrame(fd, payload, err, timeoutMs)) {
        auto doc = Json::parse(payload, err);
        if (doc && doc->isObject())
            result = std::move(*doc);
        else if (err.empty())
            err = "daemon sent a non-object response";
    }
    ::close(fd);
    return result;
}

std::optional<Json>
Client::submitAndWait(const RequestSpec &spec, const RetryPolicy &policy,
                      std::string &err, std::FILE *log)
{
    const std::string jobId = spec.jobId();
    const auto note = [log](const std::string &what) {
        if (log != nullptr)
            std::fprintf(log, "mapsctl: %s\n", what.c_str());
    };
    int attempt = 0;
    const auto backoffOr = [&](FailureClass cls,
                               const std::string &why) -> bool {
        const double delay = policy.nextDelayMs(cls, attempt);
        if (delay < 0.0) {
            err = why + (cls == FailureClass::Deterministic ||
                                 cls == FailureClass::None
                             ? " (deterministic; not retried)"
                             : " (retry budget of " +
                                   std::to_string(policy.budget) +
                                   " exhausted)");
            return false;
        }
        note(why + "; retry " + std::to_string(attempt + 1) + "/" +
             std::to_string(policy.budget) + " in " +
             std::to_string(static_cast<int>(delay)) + "ms");
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay));
        ++attempt;
        return true;
    };

    for (;;) {
        Json submit = spec.toJson();
        submit.set("v", kProtocolVersion);
        submit.set("op", "submit");
        std::string rpcErr;
        auto resp = rpc(submit, rpcErr, 30000);
        if (!resp) {
            // No daemon, or it died mid-frame: transient by definition —
            // a crashed daemon resumes our job after restart.
            if (!backoffOr(FailureClass::Transient,
                           "submit failed: " + rpcErr))
                return std::nullopt;
            continue;
        }
        if (!resp->boolean("ok")) {
            const FailureClass cls =
                resp->str("class") == "shed" ? FailureClass::Shed
                                             : FailureClass::Deterministic;
            if (!backoffOr(cls, "submit rejected: " + resp->str("error")))
                return std::nullopt;
            continue;
        }
        note("job " + jobId + " " + resp->str("state"));

        // Wait until terminal, re-issuing the wait on idle timeouts and
        // falling back to resubmission when the connection dies.
        for (;;) {
            Json wait = Json::object();
            wait.set("v", kProtocolVersion);
            wait.set("op", "wait");
            wait.set("job", jobId);
            wait.set("timeout_ms", 60000);
            auto status = rpc(wait, rpcErr, 90000);
            if (!status) {
                if (!backoffOr(FailureClass::Transient,
                               "wait failed: " + rpcErr))
                    return std::nullopt;
                break; // Resubmit (idempotent) after the backoff.
            }
            if (!status->boolean("ok")) {
                if (!backoffOr(FailureClass::Deterministic,
                               "wait rejected: " + status->str("error")))
                    return std::nullopt;
                break;
            }
            const std::string state = status->str("state");
            if (state == "done")
                return status;
            if (state == "failed") {
                if (status->str("class") != "transient") {
                    // Deterministic: retrying replays the same failure.
                    // Hand the snapshot back so the caller can report
                    // the class, error and event log honestly.
                    note("job failed deterministically; not retrying");
                    return status;
                }
                if (!backoffOr(FailureClass::Transient,
                               "job failed: " + status->str("error")))
                    return std::nullopt;
                break; // Resubmit re-queues the failed job.
            }
            // Still queued/running (or the daemon is draining): keep
            // waiting without spending retry budget. The short sleep
            // stops a draining daemon (which answers waits instantly)
            // from turning this loop into a busy poll.
            std::this_thread::sleep_for(std::chrono::milliseconds(200));
        }
    }
}

} // namespace maps::service
