#include "service/wire.hpp"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace maps::service {

namespace {

bool
fillSockaddr(const std::string &path, sockaddr_un &addr, std::string &err)
{
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        err = "socket path '" + path + "' is empty or too long";
        return false;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

/** poll() for readability; 0 on ready, -1 on timeout/error. */
int
waitReadable(int fd, int timeout_ms, std::string &err)
{
    pollfd pfd{fd, POLLIN, 0};
    for (;;) {
        const int rc = ::poll(&pfd, 1, timeout_ms);
        if (rc > 0)
            return 0;
        if (rc == 0) {
            err = "timed out waiting for a frame";
            return -1;
        }
        if (errno == EINTR)
            continue;
        err = std::string("poll: ") + std::strerror(errno);
        return -1;
    }
}

} // namespace

int
listenUnix(const std::string &path, std::string &err)
{
    sockaddr_un addr;
    if (!fillSockaddr(path, addr, err))
        return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        err = "bind '" + path + "': " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    if (::listen(fd, 64) != 0) {
        err = std::string("listen: ") + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectUnix(const std::string &path, std::string &err)
{
    sockaddr_un addr;
    if (!fillSockaddr(path, addr, err))
        return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        err = "connect '" + path + "': " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
writeFrame(int fd, const std::string &payload, std::string &err)
{
    if (payload.size() > kMaxFrameBytes) {
        err = "frame too large (" + std::to_string(payload.size()) +
              " bytes)";
        return false;
    }
    std::string frame = std::to_string(payload.size());
    frame += '\n';
    frame += payload;
    std::size_t sent = 0;
    while (sent < frame.size()) {
        const ssize_t n = ::send(fd, frame.data() + sent,
                                 frame.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            err = std::string("send: ") + std::strerror(errno);
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool
readFrame(int fd, std::string &payload, std::string &err, int timeout_ms)
{
    payload.clear();
    // Length prefix: at most 8 digits (kMaxFrameBytes fits) then '\n'.
    std::size_t length = 0;
    unsigned digits = 0;
    for (;;) {
        if (waitReadable(fd, timeout_ms, err) != 0)
            return false;
        char c = 0;
        const ssize_t n = ::recv(fd, &c, 1, 0);
        if (n == 0) {
            err = digits == 0 ? "connection closed"
                              : "connection closed mid-frame";
            return false;
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            err = std::string("recv: ") + std::strerror(errno);
            return false;
        }
        if (c == '\n') {
            if (digits == 0) {
                err = "malformed frame: empty length prefix";
                return false;
            }
            break;
        }
        if (c < '0' || c > '9' || ++digits > 8) {
            err = "malformed frame: bad length prefix";
            return false;
        }
        length = length * 10 + static_cast<std::size_t>(c - '0');
        if (length > kMaxFrameBytes) {
            err = "frame too large";
            return false;
        }
    }
    payload.reserve(length);
    char buf[4096];
    while (payload.size() < length) {
        if (waitReadable(fd, timeout_ms, err) != 0)
            return false;
        const std::size_t want =
            std::min(sizeof(buf), length - payload.size());
        const ssize_t n = ::recv(fd, buf, want, 0);
        if (n == 0) {
            err = "connection closed mid-frame";
            return false;
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            err = std::string("recv: ") + std::strerror(errno);
            return false;
        }
        payload.append(buf, static_cast<std::size_t>(n));
    }
    return true;
}

} // namespace maps::service
