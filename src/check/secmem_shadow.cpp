#include "check/secmem_shadow.hpp"

#include <sstream>

namespace maps::check {

namespace {

constexpr std::uint64_t kBlockFoldSeed = 0xC0FFEE5EC0DE5EEDull;

std::string
hex(Addr addr)
{
    std::ostringstream os;
    os << "0x" << std::hex << addr;
    return os.str();
}

} // namespace

SecmemShadow::SecmemShadow(const SecureMemoryController &controller)
    : ctl_(controller),
      layout_(controller.layout()),
      counters_(layout_),
      tree_(layout_)
{
}

std::uint64_t
SecmemShadow::digestOfCounterBlock(Addr counter_block_addr) const
{
    const std::uint64_t coverage = layout_.counterBlockCoverage();
    const std::uint64_t index =
        MetadataLayout::indexOf(counter_block_addr);
    const Addr base = index * coverage;
    std::uint64_t h = kBlockFoldSeed;
    for (Addr blk = base; blk < base + coverage; blk += kBlockSize) {
        const CounterValue value = counters_.read(blk);
        h = IntegrityTree::mix(h, value.major);
        h = IntegrityTree::mix(h, value.minor);
    }
    return h;
}

std::uint64_t
SecmemShadow::storedDigest(Addr counter_block_addr) const
{
    const auto it =
        ctrDigests_.find(MetadataLayout::indexOf(counter_block_addr));
    return it != ctrDigests_.end()
               ? it->second
               : IntegrityTree::kDefaultCounterDigest;
}

void
SecmemShadow::beginRequest(const MemoryRequest &req)
{
    if (dead_)
        return;
    if (inRequest_) {
        diverge("secmem.tap", "nested request at " + hex(req.addr));
        return;
    }
    inRequest_ = true;
    req_ = req;
    counterTaps_ = 0;
    hashTaps_ = 0;
}

void
SecmemShadow::onTap(const MetadataAccess &acc)
{
    if (dead_)
        return;
    if (!inRequest_) {
        diverge("secmem.tap",
                "metadata tap outside any request: " + hex(acc.addr));
        return;
    }
    countChecks();

    // The encoded address must agree with the tap's advertised type.
    if (MetadataLayout::typeOf(acc.addr) != acc.type) {
        diverge("secmem.tap", "tap type disagrees with encoded address " +
                                  hex(acc.addr));
        return;
    }
    const bool is_write = acc.access == AccessType::Write;

    switch (acc.type) {
      case MetadataType::Counter: {
        ++counterTaps_;
        const Addr want = layout_.counterBlockAddr(req_.addr);
        if (acc.addr != want) {
            diverge("secmem.tap", "counter tap at " + hex(acc.addr) +
                                      ", expected " + hex(want));
        } else if (is_write != req_.isWrite()) {
            diverge("secmem.tap",
                    "counter tap direction disagrees with the request");
        }
        break;
      }
      case MetadataType::Hash: {
        ++hashTaps_;
        const Addr want = layout_.hashBlockAddr(req_.addr);
        if (acc.addr != want) {
            diverge("secmem.tap", "hash tap at " + hex(acc.addr) +
                                      ", expected " + hex(want));
        } else if (is_write != req_.isWrite()) {
            diverge("secmem.tap",
                    "hash tap direction disagrees with the request");
        }
        break;
      }
      case MetadataType::TreeNode:
        // Tree traffic is cache-state dependent (verification walks,
        // lazy update cascades), so only self-consistency is checked.
        if (MetadataLayout::levelOf(acc.addr) != acc.level) {
            diverge("secmem.tap",
                    "tree tap level disagrees with encoded address " +
                        hex(acc.addr));
        }
        break;
      case MetadataType::Data:
        diverge("secmem.tap", "data address in the metadata tap stream: " +
                                  hex(acc.addr));
        break;
    }
}

void
SecmemShadow::endRequest()
{
    if (dead_ || !inRequest_)
        return;
    inRequest_ = false;
    countChecks();

    // Tap structure: the encryption counter and the data hash are
    // consulted exactly once per request, no matter what the metadata
    // cache, prefetcher or eviction cascades did.
    if (counterTaps_ != 1) {
        diverge("secmem.tap",
                std::to_string(counterTaps_) +
                    " counter taps in one request (expected 1)");
        return;
    }
    if (hashTaps_ != 1) {
        diverge("secmem.tap", std::to_string(hashTaps_) +
                                  " hash taps in one request (expected 1)");
        return;
    }

    const Addr ctr_addr = layout_.counterBlockAddr(req_.addr);
    if (req_.isWrite()) {
        counters_.onBlockWrite(req_.addr);

        // The controller's functional counter must match the shadow's
        // independently-bumped replica.
        const CounterValue got = ctl_.counters().read(req_.addr);
        const CounterValue want = counters_.read(req_.addr);
        if (!(got == want)) {
            diverge("secmem.shadow",
                    "counter mismatch at " + hex(req_.addr) +
                        ": controller (" + std::to_string(got.major) +
                        "," + std::to_string(got.minor) + "), shadow (" +
                        std::to_string(want.major) + "," +
                        std::to_string(want.minor) + ")");
            return;
        }
        if (ctl_.counters().pageOverflows() != counters_.pageOverflows()) {
            diverge("secmem.shadow",
                    "page-overflow tallies diverge: controller " +
                        std::to_string(ctl_.counters().pageOverflows()) +
                        ", shadow " +
                        std::to_string(counters_.pageOverflows()));
            return;
        }

        // Re-hash the counter block and push the update through the
        // shadow tree; the path must still authenticate.
        const std::uint64_t digest = digestOfCounterBlock(ctr_addr);
        ctrDigests_[MetadataLayout::indexOf(ctr_addr)] = digest;
        tree_.updateCounter(ctr_addr, digest);
        if (!tree_.verifyCounter(ctr_addr, digest)) {
            diverge("secmem.shadow",
                    "tree path fails to verify after updating counter "
                    "block " +
                        hex(ctr_addr));
        }
        return;
    }

    // Read: the (possibly never-written) counter block must still
    // verify against the shadow tree's on-chip root.
    if (!tree_.verifyCounter(ctr_addr, storedDigest(ctr_addr))) {
        diverge("secmem.shadow", "tree path fails to verify for counter "
                                 "block " +
                                     hex(ctr_addr) + " on a read");
    }
}

void
SecmemShadow::diverge(const char *domain, const std::string &message)
{
    dead_ = true;
    fail(domain, message);
}

} // namespace maps::check
