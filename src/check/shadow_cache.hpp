/**
 * @file
 * CacheShadow: a brute-force reference model that shadows one
 * SetAssociativeCache through its access-observer hook and flags the
 * first divergent hit/miss or victim decision.
 *
 * Two modes, chosen automatically from the shadowed cache's policy and
 * partition:
 *
 *  - Predict: for the deterministic factory policies (lru, plru, srrip,
 *    drrip, drrip-typed) and random (whose Rng stream is replicated
 *    from the same seed) on unpartitioned caches, the shadow runs an
 *    independently-written reference implementation (recency *lists*
 *    instead of stamps, etc.) and predicts every eviction: the evicted
 *    address, its dirty bit and its type class must match exactly.
 *
 *  - Mirror: for policies whose decisions the shadow cannot reproduce
 *    (eva, cost-lru, an externally-supplied oracle policy) or for
 *    partitioned caches, the shadow follows the real evictions but
 *    still verifies structure: hit/miss against its own full-history
 *    contents, victim-always-resident-in-the-set, eviction only from a
 *    full set, and dirty/type agreement on every eviction.
 *
 * Predict mode assumes the policy was built by makeReplacementPolicy
 * with default tuning (the only way the simulator builds them); pass
 * force_mirror when shadowing a cache with a custom-configured policy.
 *
 * Divergences go to check::fail under the "cache.shadow" domain; after
 * the first one the shadow goes dead (stops checking) so a single root
 * cause does not cascade into thousands of reports.
 */
#ifndef MAPS_CHECK_SHADOW_CACHE_HPP
#define MAPS_CHECK_SHADOW_CACHE_HPP

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "check/check.hpp"
#include "util/rng.hpp"

namespace maps::check {

class CacheShadow
{
  public:
    /**
     * @param cache        the cache to verify (must outlive the shadow's
     *                     last event).
     * @param label        divergence-message prefix, e.g. "llc".
     * @param seed         seed the cache's policy was built with (used
     *                     by the random / drrip reference models).
     * @param force_mirror never predict, even for a known policy.
     */
    CacheShadow(const SetAssociativeCache &cache, std::string label,
                std::uint64_t seed = 1, bool force_mirror = false);

    /** Construct a shadow and install it as the cache's observer. */
    static std::unique_ptr<CacheShadow> attach(SetAssociativeCache &cache,
                                               std::string label,
                                               std::uint64_t seed = 1,
                                               bool force_mirror = false);

    /** Feed one observed cache operation. */
    void onEvent(const CacheAccessEvent &ev);

    /** Compare the mirrored contents against the real array. */
    void finalAudit();

    bool predictive() const { return ref_ != Ref::Mirror; }
    /** False once a divergence has been reported. */
    bool alive() const { return !dead_; }
    const std::string &label() const { return label_; }

  private:
    enum class Ref : std::uint8_t
    {
        Mirror,
        Lru,
        Plru,
        Srrip,
        Drrip,
        Random,
    };

    struct Entry
    {
        Addr addr = kInvalidAddr;
        bool valid = false;
        bool dirty = false;
        std::uint8_t typeClass = 0;
    };

    const SetAssociativeCache &cache_;
    std::string label_;
    CacheGeometry geom_;
    Ref ref_ = Ref::Mirror;
    bool typedInsertion_ = false; // drrip-typed
    bool dead_ = false;

    std::vector<Entry> entries_; // sets * ways

    // Reference-policy state (only the active one is used).
    std::vector<std::vector<std::uint32_t>> lruOrder_; // per set, MRU first
    std::vector<std::uint8_t> plruBits_;               // sets * (ways-1)
    std::vector<std::uint8_t> rrpv_;                   // sets * ways
    std::array<std::int32_t, 4> psel_{};               // drrip duel
    Rng rng_;                                          // random / brrip

    Entry &entryAt(std::uint32_t set, std::uint32_t way)
    {
        return entries_[static_cast<std::size_t>(set) * geom_.assoc + way];
    }
    int findEntry(std::uint32_t set, Addr addr) const;

    void handleAccess(const CacheAccessEvent &ev);
    void handleInvalidate(const CacheAccessEvent &ev);
    void handleClean(const CacheAccessEvent &ev);

    void refTouch(std::uint32_t set, std::uint32_t way);
    void refInsert(std::uint32_t set, std::uint32_t way,
                   std::uint8_t type_class);
    void refInvalidate(std::uint32_t set, std::uint32_t way);
    std::uint32_t refVictim(std::uint32_t set);

    void plruTouch(std::uint32_t set, std::uint32_t way);
    std::uint32_t plruVictim(std::uint32_t set) const;
    std::uint8_t drripInsertionRrpv(std::uint32_t set,
                                    std::uint8_t type_class);
    std::uint32_t rripVictim(std::uint32_t set);

    void diverge(const std::string &message);
};

} // namespace maps::check

#endif // MAPS_CHECK_SHADOW_CACHE_HPP
