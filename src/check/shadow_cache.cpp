#include "check/shadow_cache.hpp"

#include <algorithm>
#include <sstream>

#include "util/logging.hpp"

namespace maps::check {

namespace {

// Default tuning of the factory-built RRIP policies (replacement.cpp).
constexpr std::uint8_t kMaxRrpv = 3;          // 2 RRPV bits
constexpr std::uint32_t kBrripEpsilon = 32;   // 1/32 near insertions
constexpr std::uint32_t kLeaderStride = 32;   // DRRIP leader spacing
constexpr std::int32_t kPselMax = 1 << 9;     // 10 PSEL bits

std::string
hex(Addr addr)
{
    std::ostringstream os;
    os << "0x" << std::hex << addr;
    return os.str();
}

} // namespace

CacheShadow::CacheShadow(const SetAssociativeCache &cache, std::string label,
                         std::uint64_t seed, bool force_mirror)
    : cache_(cache),
      label_(std::move(label)),
      geom_(cache.geometry()),
      rng_(seed)
{
    entries_.assign(
        static_cast<std::size_t>(geom_.numSets()) * geom_.assoc, Entry{});

    // A partitioned cache restricts victim masks in ways the reference
    // policies below do not model, so it always runs in Mirror mode.
    if (!force_mirror && !cache.partition()) {
        const std::string policy = cache.policy().name();
        if (policy == "lru") {
            ref_ = Ref::Lru;
        } else if (policy == "plru") {
            ref_ = Ref::Plru;
        } else if (policy == "srrip") {
            ref_ = Ref::Srrip;
        } else if (policy == "drrip" || policy == "drrip-typed") {
            ref_ = Ref::Drrip;
            typedInsertion_ = policy == "drrip-typed";
        } else if (policy == "random") {
            ref_ = Ref::Random;
        }
    }

    switch (ref_) {
      case Ref::Lru:
        lruOrder_.assign(geom_.numSets(), {});
        break;
      case Ref::Plru:
        plruBits_.assign(static_cast<std::size_t>(geom_.numSets()) *
                             (geom_.assoc > 1 ? geom_.assoc - 1 : 0),
                         0);
        break;
      case Ref::Srrip:
      case Ref::Drrip:
        rrpv_.assign(
            static_cast<std::size_t>(geom_.numSets()) * geom_.assoc,
            kMaxRrpv);
        break;
      case Ref::Random:
      case Ref::Mirror:
        break;
    }
}

std::unique_ptr<CacheShadow>
CacheShadow::attach(SetAssociativeCache &cache, std::string label,
                    std::uint64_t seed, bool force_mirror)
{
    auto shadow = std::make_unique<CacheShadow>(cache, std::move(label),
                                                seed, force_mirror);
    cache.setAccessObserver(
        [raw = shadow.get()](const CacheAccessEvent &ev) {
            raw->onEvent(ev);
        });
    return shadow;
}

int
CacheShadow::findEntry(std::uint32_t set, Addr addr) const
{
    const std::size_t base = static_cast<std::size_t>(set) * geom_.assoc;
    for (std::uint32_t w = 0; w < geom_.assoc; ++w) {
        const Entry &e = entries_[base + w];
        if (e.valid && e.addr == addr)
            return static_cast<int>(w);
    }
    return -1;
}

void
CacheShadow::onEvent(const CacheAccessEvent &ev)
{
    if (dead_)
        return;
    switch (ev.kind) {
      case CacheAccessEvent::Kind::Access:
        handleAccess(ev);
        break;
      case CacheAccessEvent::Kind::Invalidate:
        handleInvalidate(ev);
        break;
      case CacheAccessEvent::Kind::Clean:
        handleClean(ev);
        break;
    }
}

void
CacheShadow::handleAccess(const CacheAccessEvent &ev)
{
    countChecks();
    const std::uint32_t set = geom_.setIndexOf(ev.addr);
    const int hit_way = findEntry(set, ev.addr);

    if ((hit_way >= 0) != ev.outcome.hit) {
        diverge(std::string(ev.outcome.hit ? "hit" : "miss") +
                " reported for " + hex(ev.addr) + " but the shadow has " +
                (hit_way >= 0 ? "the line resident" : "no such line"));
        return;
    }

    if (ev.outcome.hit) {
        Entry &entry = entryAt(set, static_cast<std::uint32_t>(hit_way));
        entry.dirty = entry.dirty || ev.write;
        refTouch(set, static_cast<std::uint32_t>(hit_way));
        return;
    }

    // Miss: fill, evicting if (and only if) the model says so.
    std::uint32_t fill = geom_.assoc;
    for (std::uint32_t w = 0; w < geom_.assoc; ++w) {
        if (!entryAt(set, w).valid) {
            fill = w;
            break;
        }
    }

    if (predictive()) {
        if (fill != geom_.assoc) {
            if (ev.outcome.evictedValid) {
                diverge("cache evicted " + hex(ev.outcome.evictedAddr) +
                        " from a set the shadow sees as non-full");
                return;
            }
        } else {
            fill = refVictim(set);
            const Entry victim = entryAt(set, fill);
            if (!ev.outcome.evictedValid) {
                diverge("model expects eviction of " + hex(victim.addr) +
                        " but the cache evicted nothing");
                return;
            }
            if (ev.outcome.evictedAddr != victim.addr) {
                diverge("victim mismatch filling " + hex(ev.addr) +
                        ": model evicts " + hex(victim.addr) +
                        ", cache evicted " + hex(ev.outcome.evictedAddr));
                return;
            }
            if (ev.outcome.evictedDirty != victim.dirty) {
                diverge("dirty-bit mismatch on evicted " +
                        hex(victim.addr));
                return;
            }
            if (ev.outcome.evictedType != victim.typeClass) {
                diverge("type-class mismatch on evicted " +
                        hex(victim.addr));
                return;
            }
        }
    } else {
        if (ev.outcome.evictedValid) {
            const int vic = findEntry(set, ev.outcome.evictedAddr);
            if (vic < 0) {
                diverge("cache evicted " + hex(ev.outcome.evictedAddr) +
                        " which is not resident in the shadow's set " +
                        std::to_string(set));
                return;
            }
            Entry &victim = entryAt(set, static_cast<std::uint32_t>(vic));
            if (ev.outcome.evictedDirty != victim.dirty) {
                diverge("dirty-bit mismatch on evicted " +
                        hex(victim.addr));
                return;
            }
            if (ev.outcome.evictedType != victim.typeClass) {
                diverge("type-class mismatch on evicted " +
                        hex(victim.addr));
                return;
            }
            victim = Entry{};
            if (fill == geom_.assoc)
                fill = static_cast<std::uint32_t>(vic);
        } else if (fill == geom_.assoc) {
            diverge("cache filled " + hex(ev.addr) +
                    " into a full set without evicting");
            return;
        }
    }

    Entry &entry = entryAt(set, fill);
    entry.addr = ev.addr;
    entry.valid = true;
    entry.dirty = ev.write;
    entry.typeClass = ev.typeClass;
    refInsert(set, fill, ev.typeClass);
}

void
CacheShadow::handleInvalidate(const CacheAccessEvent &ev)
{
    countChecks();
    const std::uint32_t set = geom_.setIndexOf(ev.addr);
    const int way = findEntry(set, ev.addr);
    if ((way >= 0) != ev.found) {
        diverge("invalidate of " + hex(ev.addr) + " found=" +
                (ev.found ? "true" : "false") +
                " disagrees with the shadow");
        return;
    }
    if (way >= 0) {
        refInvalidate(set, static_cast<std::uint32_t>(way));
        entryAt(set, static_cast<std::uint32_t>(way)) = Entry{};
    }
}

void
CacheShadow::handleClean(const CacheAccessEvent &ev)
{
    countChecks();
    const std::uint32_t set = geom_.setIndexOf(ev.addr);
    const int way = findEntry(set, ev.addr);
    if ((way >= 0) != ev.found) {
        diverge("clean of " + hex(ev.addr) + " found=" +
                (ev.found ? "true" : "false") +
                " disagrees with the shadow");
        return;
    }
    if (way >= 0)
        entryAt(set, static_cast<std::uint32_t>(way)).dirty = false;
}

void
CacheShadow::finalAudit()
{
    if (dead_)
        return;
    countChecks();
    std::uint64_t shadow_valid = 0;
    for (const Entry &e : entries_) {
        if (e.valid)
            ++shadow_valid;
    }
    if (shadow_valid != cache_.validLines()) {
        diverge("final audit: shadow holds " +
                std::to_string(shadow_valid) + " lines, cache holds " +
                std::to_string(cache_.validLines()));
        return;
    }
    cache_.forEachLine([this](const ReplLineInfo &line) {
        if (dead_)
            return;
        const std::uint32_t set = geom_.setIndexOf(line.addr);
        const int way = findEntry(set, line.addr);
        if (way < 0) {
            diverge("final audit: " + hex(line.addr) +
                    " resident in the cache but not the shadow");
            return;
        }
        const Entry &e = entryAt(set, static_cast<std::uint32_t>(way));
        if (e.dirty != line.dirty) {
            diverge("final audit: dirty-bit mismatch on " +
                    hex(line.addr));
        } else if (e.typeClass != line.typeClass) {
            diverge("final audit: type-class mismatch on " +
                    hex(line.addr));
        }
    });
}

// ---------------------------------------------------------------------
// Reference policies. Deliberately written over different data
// structures than src/cache/policy_*.cpp (recency lists instead of
// stamps, etc.) so a shared bug is unlikely.
// ---------------------------------------------------------------------

void
CacheShadow::refTouch(std::uint32_t set, std::uint32_t way)
{
    switch (ref_) {
      case Ref::Lru: {
        auto &order = lruOrder_[set];
        order.erase(std::remove(order.begin(), order.end(), way),
                    order.end());
        order.insert(order.begin(), way);
        break;
      }
      case Ref::Plru:
        plruTouch(set, way);
        break;
      case Ref::Srrip:
      case Ref::Drrip:
        rrpv_[static_cast<std::size_t>(set) * geom_.assoc + way] = 0;
        break;
      case Ref::Random:
      case Ref::Mirror:
        break;
    }
}

void
CacheShadow::refInsert(std::uint32_t set, std::uint32_t way,
                       std::uint8_t type_class)
{
    switch (ref_) {
      case Ref::Lru: {
        auto &order = lruOrder_[set];
        order.erase(std::remove(order.begin(), order.end(), way),
                    order.end());
        order.insert(order.begin(), way);
        break;
      }
      case Ref::Plru:
        plruTouch(set, way);
        break;
      case Ref::Srrip:
        rrpv_[static_cast<std::size_t>(set) * geom_.assoc + way] =
            kMaxRrpv - 1;
        break;
      case Ref::Drrip:
        rrpv_[static_cast<std::size_t>(set) * geom_.assoc + way] =
            drripInsertionRrpv(set, type_class);
        break;
      case Ref::Random:
      case Ref::Mirror:
        break;
    }
}

void
CacheShadow::refInvalidate(std::uint32_t set, std::uint32_t way)
{
    // Only LRU keeps per-line state a victim walk could observe before
    // the way is refilled (the RRIP values are overwritten on insert,
    // matching the real policies' no-op invalidate).
    if (ref_ == Ref::Lru) {
        auto &order = lruOrder_[set];
        order.erase(std::remove(order.begin(), order.end(), way),
                    order.end());
    }
}

std::uint32_t
CacheShadow::refVictim(std::uint32_t set)
{
    switch (ref_) {
      case Ref::Lru: {
        const auto &order = lruOrder_[set];
        // Every way of a full set has been inserted at least once, so
        // the recency list covers the whole set; the victim is its tail.
        panicIf(order.size() != geom_.assoc,
                "shadow LRU list does not cover a full set");
        return order.back();
      }
      case Ref::Plru:
        return plruVictim(set);
      case Ref::Srrip:
      case Ref::Drrip:
        return rripVictim(set);
      case Ref::Random:
        return static_cast<std::uint32_t>(
            rng_.nextBounded(geom_.assoc));
      case Ref::Mirror:
        break;
    }
    panic("refVictim called on a mirror shadow");
}

void
CacheShadow::plruTouch(std::uint32_t set, std::uint32_t way)
{
    if (geom_.assoc == 1)
        return;
    const std::size_t base =
        static_cast<std::size_t>(set) * (geom_.assoc - 1);
    std::uint32_t lo = 0, hi = geom_.assoc, node = 0;
    while (hi - lo > 1) {
        const std::uint32_t mid = lo + (hi - lo) / 2;
        const bool right = way >= mid;
        // Bit set == "left half touched more recently".
        plruBits_[base + node] = right ? 0 : 1;
        node = 2 * node + (right ? 2 : 1);
        if (right)
            lo = mid;
        else
            hi = mid;
    }
}

std::uint32_t
CacheShadow::plruVictim(std::uint32_t set) const
{
    if (geom_.assoc == 1)
        return 0;
    const std::size_t base =
        static_cast<std::size_t>(set) * (geom_.assoc - 1);
    std::uint32_t lo = 0, hi = geom_.assoc, node = 0;
    while (hi - lo > 1) {
        const std::uint32_t mid = lo + (hi - lo) / 2;
        const bool right = plruBits_[base + node] != 0;
        node = 2 * node + (right ? 2 : 1);
        if (right)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

std::uint8_t
CacheShadow::drripInsertionRrpv(std::uint32_t set, std::uint8_t type_class)
{
    const unsigned cls = typedInsertion_ ? (type_class & 3) : 0;
    const std::uint32_t phase = set % kLeaderStride;
    const bool srrip_leader = phase == 0;
    const bool brrip_leader = phase == kLeaderStride / 2;
    bool use_brrip;
    if (srrip_leader)
        use_brrip = false;
    else if (brrip_leader)
        use_brrip = true;
    else
        use_brrip = psel_[cls] < 0;

    const std::uint8_t rrpv =
        !use_brrip ? kMaxRrpv - 1
                   : (rng_.nextBounded(kBrripEpsilon) == 0 ? kMaxRrpv - 1
                                                           : kMaxRrpv);

    // The duel: leader misses vote against their own insertion mode.
    if (srrip_leader && psel_[cls] > -kPselMax)
        --psel_[cls];
    else if (brrip_leader && psel_[cls] < kPselMax - 1)
        ++psel_[cls];
    return rrpv;
}

std::uint32_t
CacheShadow::rripVictim(std::uint32_t set)
{
    const std::size_t base = static_cast<std::size_t>(set) * geom_.assoc;
    while (true) {
        for (std::uint32_t w = 0; w < geom_.assoc; ++w) {
            if (rrpv_[base + w] >= kMaxRrpv)
                return w;
        }
        for (std::uint32_t w = 0; w < geom_.assoc; ++w)
            ++rrpv_[base + w];
    }
}

void
CacheShadow::diverge(const std::string &message)
{
    dead_ = true;
    fail("cache.shadow", label_ + ": " + message);
}

} // namespace maps::check
