/**
 * @file
 * maps::check — the differential-verification gate and divergence
 * registry.
 *
 * Every runtime invariant and shadow model in the simulator funnels
 * through this header: call sites test `check::enabled()` (one relaxed
 * atomic load, so the cost when disabled is a branch), perform their
 * verification, and report violations through `check::fail()`.
 *
 * Two failure modes:
 *  - Abort (default): a violation is a simulator bug — panic at once
 *    with the divergence message. This is what `MAPS_CHECK=1` builds
 *    and the Debug CI tier use.
 *  - Record: violations are counted and sampled so a harness (the
 *    runner's `--check` flag, bench/check_mutants) can report them in
 *    its result sink and turn them into an exit code.
 *
 * Enabling: checks start enabled when the build sets the
 * MAPS_CHECK_DEFAULT_ON compile definition (CMake option MAPS_CHECK)
 * or the MAPS_CHECK environment variable is set to anything but "0";
 * otherwise they start disabled and a harness opts in via
 * `setEnabled(true)` (the runner's `--check`).
 *
 * Mutations: seeded, intentionally-wrong behaviors compiled into the
 * simulator and switched on only by the bench/check_mutants self-test
 * to prove each checker actually fires. Mutation flags are consulted
 * only when checks are enabled, so they cannot perturb normal runs.
 *
 * Thread-safety: the enable gate and counters are atomics; the failure
 * sample is mutex-protected. Mutations are plain bools set before any
 * worker threads start (check_mutants is single-threaded).
 */
#ifndef MAPS_CHECK_CHECK_HPP
#define MAPS_CHECK_CHECK_HPP

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace maps::check {

enum class FailureMode : std::uint8_t
{
    Abort = 0,  ///< panic on the first divergence (default)
    Record = 1, ///< count and sample divergences for later reporting
};

/**
 * Seeded bugs for the mutation self-test (bench/check_mutants). Each
 * flag flips one deliberately-wrong code path in the simulator; the
 * self-test asserts that maps::check detects every one of them. Only
 * honored while checks are enabled.
 */
struct Mutations
{
    /** Cache picks the allowed way after the policy's victim. */
    bool lruOffByOneVictim = false;
    /** Tree-PLRU forgets to update its bits on hits. */
    bool plruSkipTouch = false;
    /** The hierarchy silently drops LLC dirty writebacks. */
    bool dropLlcWriteback = false;
    /** The controller skips tree traversal after counter fetches. */
    bool skipTreeVerify = false;
    /** Encryption-counter bumps are dropped on data writes. */
    bool stuckCounter = false;
    /** The cache ignores the way-partition's allowed mask. */
    bool ignorePartition = false;

    bool any() const
    {
        return lruOffByOneVictim || plruSkipTouch || dropLlcWriteback ||
               skipTreeVerify || stuckCounter || ignorePartition;
    }
};

/** One recorded divergence (Record mode keeps a bounded sample). */
struct Failure
{
    std::string domain; ///< e.g. "cache.shadow", "secmem.counter"
    std::string message;
};

namespace detail {
extern std::atomic<bool> gEnabled;
extern std::atomic<std::uint64_t> gChecks;
extern std::atomic<std::uint64_t> gFailures;
extern Mutations gMutations;
} // namespace detail

/** Master gate: are verification hooks active? */
inline bool
enabled()
{
    return detail::gEnabled.load(std::memory_order_relaxed);
}

void setEnabled(bool on);

void setFailureMode(FailureMode mode);
FailureMode failureMode();

/** Active seeded-bug flags (all false outside check_mutants). */
inline const Mutations &
mutations()
{
    return detail::gMutations;
}

void setMutations(const Mutations &m);
inline void
clearMutations()
{
    setMutations(Mutations{});
}

/**
 * Report one divergence. Aborts in Abort mode; in Record mode counts
 * it and keeps the first few messages for the harness report.
 *
 * If the failure's domain matches a declared expected-domain prefix
 * (setExpectedDomains), it is routed to the expected tally instead:
 * not counted as a failure, never aborts. Fault campaigns use this to
 * declare that the shadow models *should* diverge for state they
 * corrupt on purpose — and then assert expectedCount() > 0 to prove
 * the shadow really is a second detector.
 */
void fail(const std::string &domain, const std::string &message);

/**
 * Declare domains (prefix match, e.g. "secmem.shadow") whose failures
 * an active fault plan expects. Replaces the previous declaration.
 */
void setExpectedDomains(std::vector<std::string> domain_prefixes);
inline void
clearExpectedDomains()
{
    setExpectedDomains({});
}

/** Failures routed to the expected tally since the last resetStats. */
std::uint64_t expectedCount();

/** Bounded sample of expected divergences. */
std::vector<Failure> expectedFailures();

/** Account checks performed (for the --check summary row). */
inline void
countChecks(std::uint64_t n = 1)
{
    detail::gChecks.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t checkCount();
std::uint64_t failureCount();

/** Bounded sample of recorded failures (Record mode). */
std::vector<Failure> failures();

/** Clear counters and the failure sample (not the enable gate). */
void resetStats();

} // namespace maps::check

#endif // MAPS_CHECK_CHECK_HPP
