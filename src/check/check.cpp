#include "check/check.hpp"

#include <cstdlib>
#include <mutex>

#include "util/logging.hpp"

namespace maps::check {

namespace {

/** Keep at most this many failure messages; the counter keeps counting. */
constexpr std::size_t kMaxFailureSample = 64;

bool
initialEnabled()
{
#ifdef MAPS_CHECK_DEFAULT_ON
    return true;
#else
    const char *env = std::getenv("MAPS_CHECK");
    return env && *env && std::string_view(env) != "0";
#endif
}

std::atomic<FailureMode> gMode{FailureMode::Abort};

std::mutex gSampleMu;
std::vector<Failure> gSample;

std::mutex gExpectedMu;
std::vector<std::string> gExpectedPrefixes;
std::vector<Failure> gExpectedSample;
std::atomic<std::uint64_t> gExpected{0};

bool
isExpectedDomain(const std::string &domain)
{
    const std::lock_guard<std::mutex> lock(gExpectedMu);
    for (const auto &prefix : gExpectedPrefixes) {
        if (domain.rfind(prefix, 0) == 0)
            return true;
    }
    return false;
}

} // namespace

namespace detail {
std::atomic<bool> gEnabled{initialEnabled()};
std::atomic<std::uint64_t> gChecks{0};
std::atomic<std::uint64_t> gFailures{0};
Mutations gMutations{};
} // namespace detail

void
setEnabled(bool on)
{
    detail::gEnabled.store(on, std::memory_order_relaxed);
}

void
setFailureMode(FailureMode mode)
{
    gMode.store(mode, std::memory_order_relaxed);
}

FailureMode
failureMode()
{
    return gMode.load(std::memory_order_relaxed);
}

void
setMutations(const Mutations &m)
{
    detail::gMutations = m;
}

void
setExpectedDomains(std::vector<std::string> domain_prefixes)
{
    const std::lock_guard<std::mutex> lock(gExpectedMu);
    gExpectedPrefixes = std::move(domain_prefixes);
}

std::uint64_t
expectedCount()
{
    return gExpected.load(std::memory_order_relaxed);
}

std::vector<Failure>
expectedFailures()
{
    const std::lock_guard<std::mutex> lock(gExpectedMu);
    return gExpectedSample;
}

void
fail(const std::string &domain, const std::string &message)
{
    if (isExpectedDomain(domain)) {
        gExpected.fetch_add(1, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock(gExpectedMu);
        if (gExpectedSample.size() < kMaxFailureSample)
            gExpectedSample.push_back({domain, message});
        return;
    }
    detail::gFailures.fetch_add(1, std::memory_order_relaxed);
    if (failureMode() == FailureMode::Abort)
        panic("maps::check [" + domain + "] " + message);
    const std::lock_guard<std::mutex> lock(gSampleMu);
    if (gSample.size() < kMaxFailureSample)
        gSample.push_back({domain, message});
}

std::uint64_t
checkCount()
{
    return detail::gChecks.load(std::memory_order_relaxed);
}

std::uint64_t
failureCount()
{
    return detail::gFailures.load(std::memory_order_relaxed);
}

std::vector<Failure>
failures()
{
    const std::lock_guard<std::mutex> lock(gSampleMu);
    return gSample;
}

void
resetStats()
{
    detail::gChecks.store(0, std::memory_order_relaxed);
    detail::gFailures.store(0, std::memory_order_relaxed);
    gExpected.store(0, std::memory_order_relaxed);
    {
        const std::lock_guard<std::mutex> lock(gSampleMu);
        gSample.clear();
    }
    const std::lock_guard<std::mutex> lock(gExpectedMu);
    gExpectedSample.clear();
}

} // namespace maps::check
