#include "check/check.hpp"

#include <cstdlib>
#include <mutex>

#include "util/logging.hpp"

namespace maps::check {

namespace {

/** Keep at most this many failure messages; the counter keeps counting. */
constexpr std::size_t kMaxFailureSample = 64;

bool
initialEnabled()
{
#ifdef MAPS_CHECK_DEFAULT_ON
    return true;
#else
    const char *env = std::getenv("MAPS_CHECK");
    return env && *env && std::string_view(env) != "0";
#endif
}

std::atomic<FailureMode> gMode{FailureMode::Abort};

std::mutex gSampleMu;
std::vector<Failure> gSample;

} // namespace

namespace detail {
std::atomic<bool> gEnabled{initialEnabled()};
std::atomic<std::uint64_t> gChecks{0};
std::atomic<std::uint64_t> gFailures{0};
Mutations gMutations{};
} // namespace detail

void
setEnabled(bool on)
{
    detail::gEnabled.store(on, std::memory_order_relaxed);
}

void
setFailureMode(FailureMode mode)
{
    gMode.store(mode, std::memory_order_relaxed);
}

FailureMode
failureMode()
{
    return gMode.load(std::memory_order_relaxed);
}

void
setMutations(const Mutations &m)
{
    detail::gMutations = m;
}

void
fail(const std::string &domain, const std::string &message)
{
    detail::gFailures.fetch_add(1, std::memory_order_relaxed);
    if (failureMode() == FailureMode::Abort)
        panic("maps::check [" + domain + "] " + message);
    const std::lock_guard<std::mutex> lock(gSampleMu);
    if (gSample.size() < kMaxFailureSample)
        gSample.push_back({domain, message});
}

std::uint64_t
checkCount()
{
    return detail::gChecks.load(std::memory_order_relaxed);
}

std::uint64_t
failureCount()
{
    return detail::gFailures.load(std::memory_order_relaxed);
}

std::vector<Failure>
failures()
{
    const std::lock_guard<std::mutex> lock(gSampleMu);
    return gSample;
}

void
resetStats()
{
    detail::gChecks.store(0, std::memory_order_relaxed);
    detail::gFailures.store(0, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(gSampleMu);
    gSample.clear();
}

} // namespace maps::check
