/**
 * @file
 * SecmemShadow: a flat functional model of secure memory that validates
 * the SecureMemoryController end to end.
 *
 * The controller's timing machinery (metadata cache, lazy tree updates,
 * eviction cascades, prefetching) must never change *functional* secure
 * memory state. The shadow replays each serviced request against the
 * simplest possible model — a private CounterStore replica plus a
 * private functional IntegrityTree, with no cache at all — and checks:
 *
 *  - tap structure: every request emits exactly one Counter tap and one
 *    Hash tap, at the layout-computed addresses, in the request's
 *    direction; every tap's encoded type/level agrees with its address;
 *  - counter equality: after a write, the controller's counter for the
 *    block equals the shadow's independently-bumped replica (and the
 *    page-overflow tallies agree);
 *  - tree consistency: after every request the touched counter block
 *    still verifies against the shadow tree's on-chip root.
 *
 * Drive it with beginRequest / endRequest around each
 * SecureMemoryController::handleRequest call and feed every metadata
 * tap to onTap (the simulator wires this automatically under --check).
 *
 * Failures go to check::fail under "secmem.tap" (structure) and
 * "secmem.shadow" (state); like CacheShadow, the model goes dead after
 * the first divergence.
 */
#ifndef MAPS_CHECK_SECMEM_SHADOW_HPP
#define MAPS_CHECK_SECMEM_SHADOW_HPP

#include <cstdint>
#include <string>
#include <unordered_map>

#include "check/check.hpp"
#include "secmem/controller.hpp"
#include "secmem/counter_store.hpp"
#include "secmem/integrity_tree.hpp"

namespace maps::check {

class SecmemShadow
{
  public:
    explicit SecmemShadow(const SecureMemoryController &controller);

    /** A request is about to be serviced. */
    void beginRequest(const MemoryRequest &req);
    /** One metadata tap observed while servicing the request. */
    void onTap(const MetadataAccess &acc);
    /** The request finished; run the end-of-request checks. */
    void endRequest();

    bool alive() const { return !dead_; }

  private:
    const SecureMemoryController &ctl_;
    const MetadataLayout &layout_;
    CounterStore counters_; ///< shadow replica
    IntegrityTree tree_;    ///< shadow replica
    /** Digest last installed per counter-block index. */
    std::unordered_map<std::uint64_t, std::uint64_t> ctrDigests_;

    bool dead_ = false;
    bool inRequest_ = false;
    MemoryRequest req_{};
    unsigned counterTaps_ = 0;
    unsigned hashTaps_ = 0;

    /** Digest of a counter block from the shadow counter values. */
    std::uint64_t digestOfCounterBlock(Addr counter_block_addr) const;
    std::uint64_t storedDigest(Addr counter_block_addr) const;

    void diverge(const char *domain, const std::string &message);
};

} // namespace maps::check

#endif // MAPS_CHECK_SECMEM_SHADOW_HPP
